// Instrumentation invariants.
//
// The pivotal one: the closed-form count_ops (O(tree), "computable from the
// high-level description") must equal the instrumented interpreter's tallies
// op-for-op on every plan — this is the reproduction's analogue of the
// model-vs-PAPI agreement in TCS'06.
#include "core/instrumented.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/executor.hpp"
#include "core/plan_io.hpp"
#include "core/verify.hpp"
#include "search/enumerate.hpp"
#include "search/sampler.hpp"
#include "util/rng.hpp"

namespace whtlab::core {
namespace {

TEST(OpCounts, LeafCountsAreExact) {
  // small[k]: 2^k loads/stores, k*2^k flops, 2*2^k index ops, 1 call.
  for (int k = 1; k <= kMaxUnrolled; ++k) {
    const OpCounts c = count_ops(Plan::small(k));
    const std::uint64_t m = std::uint64_t{1} << k;
    EXPECT_EQ(c.loads, m);
    EXPECT_EQ(c.stores, m);
    EXPECT_EQ(c.flops, static_cast<std::uint64_t>(k) * m);
    EXPECT_EQ(c.index_ops, 2 * m);
    EXPECT_EQ(c.calls, 1u);
    EXPECT_EQ(c.loop_outer, 0u);
    EXPECT_EQ(c.loop_mid, 0u);
    EXPECT_EQ(c.loop_inner, 0u);
  }
}

TEST(OpCounts, FlopCountIsNlogNForAllPlans) {
  // Every WHT algorithm performs exactly N*log2(N) adds/subs.
  util::Rng rng(42);
  search::RecursiveSplitSampler sampler(kMaxUnrolled);
  for (int n : {3, 6, 9, 12}) {
    for (int trial = 0; trial < 10; ++trial) {
      const Plan plan = sampler.sample(n, rng);
      const OpCounts c = count_ops(plan);
      EXPECT_EQ(c.flops, (std::uint64_t{1} << n) * static_cast<std::uint64_t>(n))
          << plan.to_string();
    }
  }
}

TEST(OpCounts, LoadsEqualStoresEqualNTimesLeaves) {
  // Each leaf call loads/stores its footprint once; summed over the tree
  // that is N per leaf node.
  const Plan plan = parse_plan("split[small[2],split[small[1],small[3]],small[2]]");
  const OpCounts c = count_ops(plan);
  const std::uint64_t n = plan.size();
  EXPECT_EQ(c.loads, n * static_cast<std::uint64_t>(plan.leaf_count()));
  EXPECT_EQ(c.stores, c.loads);
}

TEST(OpCounts, IterativeInnerLoopTotal) {
  // iterative(n): one split with n unit children; child i runs N/2 inner
  // iterations => total n*N/2.
  const int n = 8;
  const OpCounts c = count_ops(Plan::iterative(n));
  const std::uint64_t size = std::uint64_t{1} << n;
  EXPECT_EQ(c.loop_inner, static_cast<std::uint64_t>(n) * size / 2);
  EXPECT_EQ(c.loop_outer, static_cast<std::uint64_t>(n));
  // calls: 1 root + n*(N/2) leaf invocations.
  EXPECT_EQ(c.calls, 1 + static_cast<std::uint64_t>(n) * size / 2);
}

class ClosedFormVsInterpreter : public ::testing::TestWithParam<int> {};

TEST_P(ClosedFormVsInterpreter, AgreeOnEveryEnumeratedPlan) {
  const int n = GetParam();
  for (const auto& plan : search::enumerate_plans(n, 4)) {
    std::vector<double> x(plan.size(), 1.0);
    const OpCounts walked = execute_instrumented(plan, x.data());
    const OpCounts closed = count_ops(plan);
    EXPECT_EQ(walked, closed) << plan.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(SizesOneToFive, ClosedFormVsInterpreter,
                         ::testing::Range(1, 6));

TEST(Instrumented, AgreesOnRandomLargerPlans) {
  util::Rng rng(99);
  search::RecursiveSplitSampler sampler(kMaxUnrolled);
  for (int n : {8, 10, 11}) {
    for (int trial = 0; trial < 4; ++trial) {
      const Plan plan = sampler.sample(n, rng);
      std::vector<double> x(plan.size(), 0.5);
      EXPECT_EQ(execute_instrumented(plan, x.data()), count_ops(plan))
          << plan.to_string();
    }
  }
}

TEST(Instrumented, ExecutionIsNumericallyIdenticalToProduction) {
  util::Rng rng(123);
  search::RecursiveSplitSampler sampler(kMaxUnrolled);
  const Plan plan = sampler.sample(10, rng);
  const std::uint64_t size = plan.size();
  std::vector<double> a(size);
  std::vector<double> b(size);
  util::Rng fill(5);
  for (std::uint64_t i = 0; i < size; ++i) a[i] = b[i] = fill.uniform(-1, 1);
  execute(plan, a.data(), CodeletBackend::kTemplate);
  execute_instrumented(plan, b.data());
  for (std::uint64_t i = 0; i < size; ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(ReferenceStream, AccessCountMatchesOpCounts) {
  util::Rng rng(7);
  search::RecursiveSplitSampler sampler(kMaxUnrolled);
  for (int n : {4, 7, 10}) {
    const Plan plan = sampler.sample(n, rng);
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    auto sink = [&](std::uint64_t /*index*/, bool is_store) {
      if (is_store) ++stores; else ++loads;
    };
    reference_stream(plan, sink);
    const OpCounts c = count_ops(plan);
    EXPECT_EQ(loads, c.loads);
    EXPECT_EQ(stores, c.stores);
  }
}

TEST(ReferenceStream, TouchesExactlyTheFootprint) {
  const Plan plan = Plan::balanced_binary(9, 3);
  std::vector<int> touched(plan.size(), 0);
  auto sink = [&](std::uint64_t index, bool /*is_store*/) {
    ASSERT_LT(index, plan.size());
    ++touched[index];
  };
  reference_stream(plan, sink);
  for (std::uint64_t i = 0; i < plan.size(); ++i) {
    EXPECT_GT(touched[i], 0) << i;  // every element read and written
  }
}

TEST(ReferenceStream, LeafStreamOrderIsLoadsThenStores) {
  const Plan plan = Plan::small(2);
  std::vector<std::pair<std::uint64_t, bool>> events;
  auto sink = [&](std::uint64_t index, bool is_store) {
    events.emplace_back(index, is_store);
  };
  reference_stream(plan, sink);
  ASSERT_EQ(events.size(), 8u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(events[static_cast<std::size_t>(i)],
              (std::pair<std::uint64_t, bool>{static_cast<std::uint64_t>(i), false}));
    EXPECT_EQ(events[static_cast<std::size_t>(i + 4)],
              (std::pair<std::uint64_t, bool>{static_cast<std::uint64_t>(i), true}));
  }
}

TEST(OpCounts, ScaledMultipliesEveryField) {
  OpCounts c;
  c.loads = 2; c.stores = 3; c.flops = 4; c.index_ops = 5;
  c.loop_outer = 6; c.loop_mid = 7; c.loop_inner = 8; c.calls = 9;
  const OpCounts s = c.scaled(10);
  EXPECT_EQ(s.loads, 20u);
  EXPECT_EQ(s.stores, 30u);
  EXPECT_EQ(s.flops, 40u);
  EXPECT_EQ(s.index_ops, 50u);
  EXPECT_EQ(s.loop_outer, 60u);
  EXPECT_EQ(s.loop_mid, 70u);
  EXPECT_EQ(s.loop_inner, 80u);
  EXPECT_EQ(s.calls, 90u);
}

TEST(InstructionWeights, WeightedSumIsLinear) {
  InstructionWeights w;
  OpCounts a;
  a.loads = 10;
  OpCounts b;
  b.flops = 20;
  OpCounts both = a;
  both += b;
  EXPECT_DOUBLE_EQ(w.instructions(both), w.instructions(a) + w.instructions(b));
}

}  // namespace
}  // namespace whtlab::core
