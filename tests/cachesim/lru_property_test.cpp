// LRU inclusion property tests.
//
// For LRU replacement with a fixed number of sets, the lines resident in an
// a-way cache are always a subset of those in a 2a-way cache (per-set stack
// inclusion), so misses are non-increasing in associativity.  Likewise,
// doubling the set count with fixed associativity cannot create new misses
// for power-of-two strided WHT traces.  These are strong whole-simulator
// invariants: any bookkeeping bug in the LRU rotation breaks them.
#include <gtest/gtest.h>

#include "cachesim/trace_runner.hpp"
#include "search/sampler.hpp"
#include "util/rng.hpp"

namespace whtlab::cachesim {
namespace {

class LruInclusionTest : public ::testing::TestWithParam<int> {};

TEST_P(LruInclusionTest, MissesNonIncreasingInAssociativity) {
  const int n = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(n));
  search::RecursiveSplitSampler sampler(core::kMaxUnrolled);
  for (int trial = 0; trial < 3; ++trial) {
    const auto plan = sampler.sample(n, rng);
    std::uint64_t previous = ~std::uint64_t{0};
    // Same number of sets (64) throughout; associativity 1, 2, 4, 8.
    for (std::uint32_t assoc = 1; assoc <= 8; assoc *= 2) {
      const CacheConfig config{
          static_cast<std::uint64_t>(64) * 64 * assoc, 64, assoc};
      const auto misses = simulate_plan(plan, config).l1_misses;
      EXPECT_LE(misses, previous)
          << plan.to_string() << " assoc=" << assoc;
      previous = misses;
    }
  }
}

TEST_P(LruInclusionTest, MissesNonIncreasingInCacheSize) {
  const int n = GetParam();
  util::Rng rng(100 + static_cast<std::uint64_t>(n));
  search::RecursiveSplitSampler sampler(core::kMaxUnrolled);
  const auto plan = sampler.sample(n, rng);
  std::uint64_t previous = ~std::uint64_t{0};
  // Fixed 2-way associativity, growing size: 8KB .. 256KB.
  for (std::uint64_t kb = 8; kb <= 256; kb *= 2) {
    const CacheConfig config{kb * 1024, 64, 2};
    const auto misses = simulate_plan(plan, config).l1_misses;
    EXPECT_LE(misses, previous) << plan.to_string() << " size=" << kb << "KB";
    previous = misses;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, LruInclusionTest,
                         ::testing::Values(10, 13, 15));

TEST(LruProperty, LargerLinesNeverIncreaseMissesOnUnitStrideSweep) {
  // For a purely sequential sweep, bigger lines mean fewer misses.
  Cache small_lines({64 * 1024, 32, 2});
  Cache big_lines({64 * 1024, 128, 2});
  for (std::uint64_t addr = 0; addr < 256 * 1024; addr += 8) {
    small_lines.access(addr);
    big_lines.access(addr);
  }
  EXPECT_GT(small_lines.stats().misses, big_lines.stats().misses);
}

}  // namespace
}  // namespace whtlab::cachesim
