#include "cachesim/cache.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace whtlab::cachesim {
namespace {

TEST(CacheConfig, Validation) {
  EXPECT_NO_THROW(CacheConfig::opteron_l1().validate());
  EXPECT_NO_THROW(CacheConfig::opteron_l2().validate());
  EXPECT_NO_THROW(CacheConfig::host_l1().validate());  // 48 KB 12-way
  EXPECT_NO_THROW(CacheConfig::host_l2().validate());
  EXPECT_THROW((CacheConfig{1000, 64, 2}).validate(), std::invalid_argument);
  EXPECT_THROW((CacheConfig{1024, 48, 2}).validate(), std::invalid_argument);
  EXPECT_THROW((CacheConfig{1024, 64, 3}).validate(), std::invalid_argument);
  EXPECT_THROW((CacheConfig{64, 128, 1}).validate(), std::invalid_argument);
  EXPECT_THROW((CacheConfig{128, 64, 4}).validate(), std::invalid_argument);
  // 12-way is fine, but the set count must stay a power of two:
  // 96 lines / 12 ways = 8 sets (ok); 96 lines / 16 ways = 6 sets (bad).
  EXPECT_NO_THROW((CacheConfig{96 * 64, 64, 12}).validate());
  EXPECT_THROW((CacheConfig{96 * 64, 64, 16}).validate(), std::invalid_argument);
}

TEST(CacheConfig, HostGeometry) {
  const CacheConfig l1 = CacheConfig::host_l1();
  EXPECT_EQ(l1.num_lines(), 768u);
  EXPECT_EQ(l1.num_sets(), 64u);
}

TEST(Cache, TwelveWaySetHoldsTwelveConflictingLines) {
  // 1 set of 12 ways: 12 distinct conflicting lines must all stay resident.
  Cache cache({12 * 64, 64, 12});
  for (std::uint64_t line = 0; line < 12; ++line) cache.access(line * 64);
  cache.reset_stats();
  for (std::uint64_t line = 0; line < 12; ++line) {
    EXPECT_TRUE(cache.access(line * 64)) << line;
  }
  EXPECT_FALSE(cache.access(12 * 64));  // the 13th evicts LRU (line 0)
  EXPECT_FALSE(cache.access(0));
}

TEST(CacheConfig, Geometry) {
  const CacheConfig l1 = CacheConfig::opteron_l1();
  EXPECT_EQ(l1.num_lines(), 1024u);
  EXPECT_EQ(l1.num_sets(), 512u);
  const CacheConfig dm = CacheConfig::direct_mapped(64, 8);
  EXPECT_EQ(dm.num_sets(), 64u);
  EXPECT_EQ(dm.associativity, 1u);
}

TEST(Cache, ColdMissThenHit) {
  Cache cache({1024, 64, 2});
  EXPECT_FALSE(cache.access(0));
  EXPECT_TRUE(cache.access(0));
  EXPECT_TRUE(cache.access(63));   // same line
  EXPECT_FALSE(cache.access(64));  // next line
  EXPECT_EQ(cache.stats().accesses, 4u);
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_EQ(cache.stats().hits(), 2u);
}

TEST(Cache, DirectMappedConflict) {
  // 4 lines of 64B, direct mapped: addresses 0 and 256 share set 0.
  Cache cache(CacheConfig::direct_mapped(4, 64));
  EXPECT_FALSE(cache.access(0));
  EXPECT_FALSE(cache.access(256));
  EXPECT_FALSE(cache.access(0));  // evicted by 256
  EXPECT_FALSE(cache.access(256));
}

TEST(Cache, TwoWayAbsorbsPairConflict) {
  // Same two conflicting lines fit in a 2-way set together.
  Cache cache({8 * 64, 64, 2});  // 8 lines, 2-way, 4 sets
  EXPECT_FALSE(cache.access(0));
  EXPECT_FALSE(cache.access(4 * 64));  // same set, other way
  EXPECT_TRUE(cache.access(0));
  EXPECT_TRUE(cache.access(4 * 64));
}

TEST(Cache, LruEvictsLeastRecent) {
  Cache cache({2 * 64, 64, 2});  // one set, two ways
  cache.access(0);      // miss, set = {0}
  cache.access(64);     // miss, set = {64, 0}
  cache.access(0);      // hit, set = {0, 64}
  cache.access(128);    // miss, evicts 64
  EXPECT_TRUE(cache.access(0));
  EXPECT_FALSE(cache.access(64));
}

TEST(Cache, FullyAssociativeHoldsWorkingSet) {
  Cache cache({4 * 64, 64, 4});  // one set, 4 ways
  for (std::uint64_t line = 0; line < 4; ++line) cache.access(line * 64);
  cache.reset_stats();
  for (int round = 0; round < 3; ++round) {
    for (std::uint64_t line = 0; line < 4; ++line) {
      EXPECT_TRUE(cache.access(line * 64));
    }
  }
  EXPECT_EQ(cache.stats().misses, 0u);
}

TEST(Cache, SequentialSweepMissesOncePerLine) {
  Cache cache(CacheConfig::opteron_l1());
  const std::uint64_t bytes = 32 * 1024;  // half of L1
  for (std::uint64_t addr = 0; addr < bytes; addr += 8) cache.access(addr);
  EXPECT_EQ(cache.stats().misses, bytes / 64);
  EXPECT_EQ(cache.stats().accesses, bytes / 8);
}

TEST(Cache, ThrashingSweepLargerThanCache) {
  // Sweeping 2x the cache size twice with direct mapping: every line access
  // misses in the second sweep too.
  Cache cache(CacheConfig::direct_mapped(16, 64));
  const std::uint64_t lines = 32;
  for (int sweep = 0; sweep < 2; ++sweep) {
    for (std::uint64_t line = 0; line < lines; ++line) {
      cache.access(line * 64);
    }
  }
  EXPECT_EQ(cache.stats().misses, 2 * lines);
}

TEST(Cache, FlushForcesMisses) {
  Cache cache({1024, 64, 2});
  cache.access(0);
  EXPECT_TRUE(cache.access(0));
  cache.flush();
  EXPECT_FALSE(cache.access(0));
}

TEST(Cache, ContainsIsSideEffectFree) {
  Cache cache({1024, 64, 2});
  EXPECT_FALSE(cache.contains(0));
  cache.access(0);
  const auto accesses = cache.stats().accesses;
  EXPECT_TRUE(cache.contains(0));
  EXPECT_TRUE(cache.contains(32));   // same line
  EXPECT_FALSE(cache.contains(64));  // different line
  EXPECT_EQ(cache.stats().accesses, accesses);
}

TEST(Cache, MissRate) {
  Cache cache({1024, 64, 2});
  cache.access(0);
  cache.access(0);
  cache.access(0);
  cache.access(0);
  EXPECT_DOUBLE_EQ(cache.stats().miss_rate(), 0.25);
  CacheStats empty;
  EXPECT_DOUBLE_EQ(empty.miss_rate(), 0.0);
}

}  // namespace
}  // namespace whtlab::cachesim
