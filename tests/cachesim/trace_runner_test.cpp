#include "cachesim/trace_runner.hpp"

#include <gtest/gtest.h>

#include "cachesim/hierarchy.hpp"
#include "core/instrumented.hpp"
#include "core/plan.hpp"
#include "search/sampler.hpp"
#include "util/rng.hpp"

namespace whtlab::cachesim {
namespace {

TEST(TraceRunner, AccessCountMatchesOpCounts) {
  for (const auto& plan :
       {core::Plan::iterative(10), core::Plan::right_recursive(10),
        core::Plan::balanced_binary(12, 4)}) {
    const auto result = simulate_plan(plan, CacheConfig::opteron_l1());
    EXPECT_EQ(result.accesses, core::count_ops(plan).accesses())
        << plan.to_string();
  }
}

TEST(TraceRunner, InCacheTransformHasCompulsoryMissesOnly) {
  // 2^9 doubles = 4KB fits L1: misses = number of lines = N/8.
  const auto plan = core::Plan::iterative(9);
  const auto result = simulate_plan(plan, CacheConfig::opteron_l1());
  EXPECT_EQ(result.l1_misses, (1u << 9) / 8);
}

TEST(TraceRunner, InCacheHoldsForEveryPlanShape) {
  util::Rng rng(11);
  search::RecursiveSplitSampler sampler(core::kMaxUnrolled);
  for (int trial = 0; trial < 10; ++trial) {
    const auto plan = sampler.sample(12, rng);  // 32KB < 64KB L1
    const auto result = simulate_plan(plan, CacheConfig::opteron_l1());
    EXPECT_EQ(result.l1_misses, (1u << 12) / 8) << plan.to_string();
  }
}

TEST(TraceRunner, OutOfCacheTransformMissesMore) {
  // 2^16 doubles = 512KB > 64KB L1.
  const auto plan = core::Plan::iterative(16);
  const auto result = simulate_plan(plan, CacheConfig::opteron_l1());
  EXPECT_GT(result.l1_misses, (1u << 16) / 8);
  EXPECT_LE(result.l1_misses, result.accesses);
}

TEST(TraceRunner, MissesBoundedByCompulsoryAndTotal) {
  util::Rng rng(13);
  search::RecursiveSplitSampler sampler(core::kMaxUnrolled);
  for (int n : {10, 14, 16}) {
    const auto plan = sampler.sample(n, rng);
    const auto result = simulate_plan(plan, CacheConfig::opteron_l1());
    EXPECT_GE(result.l1_misses, (std::uint64_t{1} << n) / 8);
    EXPECT_LE(result.l1_misses, result.accesses);
  }
}

TEST(TraceRunner, HierarchyL2MissesNeverExceedL1) {
  const auto plan = core::Plan::right_recursive(16);
  const auto result = simulate_plan(plan, CacheConfig::opteron_l1(),
                                    CacheConfig::opteron_l2());
  EXPECT_LE(result.l2_misses, result.l1_misses);
  // 512KB fits in 1MB L2: L2 sees only compulsory misses.
  EXPECT_EQ(result.l2_misses, (1u << 16) / 8);
}

TEST(TraceRunner, WarmRunOfInCacheTransformIsAllHits) {
  const auto plan = core::Plan::iterative(9);
  Cache cache(CacheConfig::opteron_l1());
  const auto cold = simulate_plan_warm(plan, cache);
  EXPECT_EQ(cold.l1_misses, (1u << 9) / 8);
  const auto warm = simulate_plan_warm(plan, cache);
  EXPECT_EQ(warm.l1_misses, 0u);
  EXPECT_EQ(warm.accesses, cold.accesses);
}

TEST(TraceRunner, IterativeVsRecursiveMissOrderingAtLargeSize) {
  // Past the L1 boundary the recursive plan localizes work and misses less
  // than the iterative plan (the paper's Figure 3 crossover mechanism).
  const int n = 16;
  const auto iter = simulate_plan(core::Plan::iterative(n),
                                  CacheConfig::opteron_l1());
  const auto rec = simulate_plan(core::Plan::right_recursive(n),
                                 CacheConfig::opteron_l1());
  EXPECT_LT(rec.l1_misses, iter.l1_misses);
}

TEST(Hierarchy, AccessReportsServicingLevel) {
  Hierarchy h(CacheConfig{128, 64, 1}, CacheConfig{1024, 64, 2});
  EXPECT_EQ(h.access(0), 3);   // cold: memory
  EXPECT_EQ(h.access(0), 1);   // L1 hit
  h.access(64);                // occupies other L1 line (set 1)
  EXPECT_EQ(h.access(128), 3); // set 0 conflict in L1, cold in L2
  EXPECT_EQ(h.access(0), 2);   // evicted from L1, still in L2
}

}  // namespace
}  // namespace whtlab::cachesim
