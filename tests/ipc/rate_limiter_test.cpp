// RateLimiter: exact trailing-window admission from a circular buffer of
// the last `limit` admission timestamps.  The properties the daemon's
// per-client throttling depends on: at most `limit` admissions in any
// trailing window, rejected attempts cost nothing (they are not recorded,
// so a hammering client is not punished forever), and expiry readmits the
// moment the oldest admission leaves the window.
#include <gtest/gtest.h>

#include <cstdint>

#include "ipc/rate_limiter.hpp"

namespace whtlab::ipc {
namespace {

constexpr std::uint64_t kWindow = 1000;  // ns, arbitrary units

TEST(RateLimiter, AdmitsUpToLimitInOneWindow) {
  RateLimiter limiter(3, kWindow);
  EXPECT_TRUE(limiter.try_acquire(0));
  EXPECT_TRUE(limiter.try_acquire(1));
  EXPECT_TRUE(limiter.try_acquire(2));
  EXPECT_FALSE(limiter.try_acquire(3));
  EXPECT_FALSE(limiter.try_acquire(kWindow - 1));
}

TEST(RateLimiter, OldestExpiryReadmitsExactly) {
  RateLimiter limiter(2, kWindow);
  EXPECT_TRUE(limiter.try_acquire(0));
  EXPECT_TRUE(limiter.try_acquire(100));
  // Window is trailing: t=0 leaves at t=kWindow, not at a period boundary.
  EXPECT_FALSE(limiter.try_acquire(kWindow - 1));
  EXPECT_TRUE(limiter.try_acquire(kWindow));
  // Now the retained stamps are {100, kWindow}; 100 expires at 100+kWindow.
  EXPECT_FALSE(limiter.try_acquire(kWindow + 99));
  EXPECT_TRUE(limiter.try_acquire(kWindow + 100));
}

TEST(RateLimiter, RejectionsAreNotRecorded) {
  RateLimiter limiter(1, kWindow);
  EXPECT_TRUE(limiter.try_acquire(0));
  // A storm of rejected attempts must not extend the penalty: only the
  // t=0 admission occupies the window.
  for (std::uint64_t t = 1; t < kWindow; t += 50) {
    EXPECT_FALSE(limiter.try_acquire(t));
  }
  EXPECT_TRUE(limiter.try_acquire(kWindow));
}

TEST(RateLimiter, ZeroLimitDisables) {
  RateLimiter limiter(0, kWindow);
  for (std::uint64_t t = 0; t < 100; ++t) {
    EXPECT_TRUE(limiter.try_acquire(t));
  }
}

TEST(RateLimiter, ResetForgetsHistory) {
  RateLimiter limiter(1, kWindow);
  EXPECT_TRUE(limiter.try_acquire(0));
  EXPECT_FALSE(limiter.try_acquire(1));
  limiter.reset();  // slot reclaimed -> the next owner starts fresh
  EXPECT_TRUE(limiter.try_acquire(2));
}

TEST(RateLimiter, SteadyRateJustUnderLimitAlwaysAdmits) {
  RateLimiter limiter(4, kWindow);
  // 4 per window spaced evenly = exactly the budget; every attempt lands
  // as its predecessor from one window ago expires.
  std::uint64_t t = 0;
  for (int i = 0; i < 64; ++i, t += kWindow / 4) {
    EXPECT_TRUE(limiter.try_acquire(t)) << "attempt " << i;
  }
}

TEST(RateLimiter, WindowRolloverAtClockBoundary) {
  // Admission near the top of the 64-bit clock: `oldest + window` would
  // wrap and misclassify everything, `now - oldest` (what the limiter
  // computes) stays exact across the rollover.
  RateLimiter limiter(2, kWindow);
  const std::uint64_t top = UINT64_MAX - 500;
  EXPECT_TRUE(limiter.try_acquire(top));
  EXPECT_TRUE(limiter.try_acquire(top + 100));
  // Still inside `top`'s trailing window — including attempts whose
  // timestamp has already wrapped past zero.
  EXPECT_FALSE(limiter.try_acquire(top + 499));   // == UINT64_MAX - 1
  EXPECT_FALSE(limiter.try_acquire(top + 501));   // wrapped: == 0
  EXPECT_FALSE(limiter.try_acquire(top + 999));
  // `top` expires exactly kWindow later, on the far side of the wrap.
  EXPECT_TRUE(limiter.try_acquire(top + kWindow));  // wrapped: == 499
  // And the retained stamps {top + 100, top + kWindow} keep expiring on
  // schedule in wrapped time.
  EXPECT_FALSE(limiter.try_acquire(top + kWindow + 99));
  EXPECT_TRUE(limiter.try_acquire(top + kWindow + 100));
}

// --- CreditBucket: cost-aware token-bucket flow control ---------------------

TEST(CreditBucket, SpendsDownToZeroThenRefuses) {
  CreditBucket bucket(10, kWindow);
  EXPECT_TRUE(bucket.try_spend(4, 0));
  EXPECT_TRUE(bucket.try_spend(6, 0));  // exactly drained
  EXPECT_FALSE(bucket.try_spend(1, 0));
  EXPECT_EQ(bucket.available(0), 0u);
}

TEST(CreditBucket, CostLargerThanBalanceIsRefusedWhole) {
  // No partial spends: a 7-vector batch either fits the balance or waits.
  CreditBucket bucket(10, kWindow);
  EXPECT_TRUE(bucket.try_spend(5, 0));
  EXPECT_FALSE(bucket.try_spend(7, 0));
  EXPECT_EQ(bucket.available(0), 5u) << "the refused spend must cost nothing";
  EXPECT_TRUE(bucket.try_spend(5, 0));
}

TEST(CreditBucket, RefillsProportionallyWithinTheWindow) {
  CreditBucket bucket(10, kWindow);
  EXPECT_TRUE(bucket.try_spend(10, 0));
  EXPECT_FALSE(bucket.try_spend(1, 0));
  // Half a window later, half the capacity is back.
  EXPECT_EQ(bucket.available(kWindow / 2), 5u);
  EXPECT_TRUE(bucket.try_spend(5, kWindow / 2));
  EXPECT_FALSE(bucket.try_spend(1, kWindow / 2));
}

TEST(CreditBucket, FullWindowRestoresFullCapacityExactly) {
  CreditBucket bucket(10, kWindow);
  EXPECT_TRUE(bucket.try_spend(10, 0));
  EXPECT_EQ(bucket.available(kWindow), 10u);
  // Far beyond the window must not overfill past the capacity.
  EXPECT_TRUE(bucket.try_spend(2, 10 * kWindow));
  EXPECT_EQ(bucket.available(10 * kWindow), 8u);
}

TEST(CreditBucket, SubQuantumElapsesAccrueInsteadOfVanishing) {
  // With a big capacity/window ratio mismatch (1 credit per 100 ticks),
  // polling every tick must not round each elapsed slice down to zero
  // credits forever.
  CreditBucket bucket(10, kWindow);  // 1 credit per 100 ticks
  EXPECT_TRUE(bucket.try_spend(10, 0));
  for (std::uint64_t t = 1; t < 100; ++t) {
    EXPECT_EQ(bucket.available(t), 0u) << t;
  }
  EXPECT_EQ(bucket.available(100), 1u) << "tick 100 has earned one credit";
}

TEST(CreditBucket, ZeroCapacityDisables) {
  CreditBucket bucket(0, kWindow);
  EXPECT_TRUE(bucket.try_spend(1, 0));
  EXPECT_TRUE(bucket.try_spend(~std::uint64_t{0}, 1));
}

TEST(CreditBucket, ResetRestoresAFullFreshBucket) {
  CreditBucket bucket(10, kWindow);
  EXPECT_TRUE(bucket.try_spend(10, 5000));
  bucket.reset();  // slot handed to a new tenant
  EXPECT_TRUE(bucket.try_spend(10, 0))
      << "a new tenant starts full, with no history from the old one";
}

TEST(CreditBucket, HugeCapacityTimesElapsedDoesNotOverflow) {
  // elapsed * capacity would wrap uint64 here; the 128-bit refill math must
  // keep the proportion exact instead of leaking or losing credits.
  const std::uint64_t cap = std::uint64_t{1} << 32;
  const std::uint64_t window = std::uint64_t{1} << 40;
  CreditBucket bucket(cap, window);
  EXPECT_TRUE(bucket.try_spend(cap, 0));
  const std::uint64_t half = window / 2;
  EXPECT_EQ(bucket.available(half), cap / 2);
}

}  // namespace
}  // namespace whtlab::ipc
