// Chaos harness: the PR-7 fault-tolerance contract, end to end.  Several
// forked verifying clients run bounded request streams in --reconnect mode
// while the parent SIGKILLs and restarts the daemon under them, with fault
// injection armed inside each daemon (ring-publish failures, backend exec
// faults feeding the Engine circuit breaker).  The contract under all of
// that chaos:
//
//   * every request that completes kOk is bit-exact vs an in-process plan,
//   * every request that does not complete resolves to a TYPED status
//     within its deadline — never a hang, never silent corruption,
//   * the endpoint segment is reusable by each successor daemon and gone
//     after the final cleanup (no leaked /dev/shm state).
//
// Fork discipline as everywhere in tests/ipc: all forks happen while the
// forking process is single-threaded (client children are forked before
// any Daemon exists in the parent; each Daemon lives in its own forked
// child); children leave via _exit.
#include <gtest/gtest.h>

#include <csignal>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "api/planner.hpp"
#include "api/transform.hpp"
#include "ipc/client.hpp"
#include "ipc/daemon.hpp"
#include "ipc/shm.hpp"
#include "util/fault.hpp"
#include "util/rng.hpp"

namespace whtlab::ipc {
namespace {

constexpr int kClients = 3;
constexpr int kKillRounds = 3;
constexpr int kRequests = 18;
constexpr int kMinOk = 3;
constexpr int kLogN = 6;

std::string unique_endpoint() {
  return "chaos-" + std::to_string(::getpid());
}

/// Client child body: a bounded verifying request stream that must survive
/// daemon crashes.  Exit codes: 0 ok, 10 no daemon ever, 12 too few
/// completions, 13 unexpected exception, 42 completed-but-corrupt (fatal:
/// a wrong answer is the one thing chaos must never produce).
int run_chaos_client(const std::string& endpoint, std::uint64_t seed) {
  if (!Client::wait_for_daemon(endpoint, 15000)) return 10;
  Client::Options options;
  options.endpoint = endpoint;
  options.timeout_ms = 4000;
  options.reconnect = true;
  options.reconnect_window_ms = 8000;
  options.backoff_initial_ms = 2;
  options.backoff_max_ms = 100;
  try {
    auto client = Client::connect(options);
    const api::Transform reference =
        api::Planner().backend("generated").plan(kLogN);
    const std::size_t doubles = std::size_t{1} << kLogN;
    int ok = 0;
    for (int r = 0; r < kRequests; ++r) {
      // Pace the stream so it spans every kill/restart round the parent
      // runs — an unpaced client finishes before the first SIGKILL lands
      // and the harness tests nothing.
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
      double* x = nullptr;
      try {
        x = client.stage(kLogN);
      } catch (const Error&) {
        continue;  // typed staging failure mid-outage: an answer, not a bug
      }
      const auto input =
          util::random_vector(doubles, seed * 1000 + static_cast<unsigned>(r));
      std::memcpy(x, input.data(), doubles * sizeof(double));
      if (client.transform(kLogN, x) != Status::kOk) continue;
      std::vector<double> expected = input;
      reference.execute(expected.data());
      if (std::memcmp(x, expected.data(), doubles * sizeof(double)) != 0) {
        return 42;
      }
      ++ok;
    }
    return ok >= kMinOk ? 0 : 12;
  } catch (const std::exception&) {
    return 13;
  }
}

/// Daemon child body: serve the endpoint with faults armed until killed.
/// The exec faults feed the Engine breaker (fallback keeps answers
/// bit-exact); the publish fault exercises the daemon's respond retry.
void run_chaos_daemon(const std::string& endpoint, int round) {
  try {
    const std::string seed = std::to_string(101 + round);
    util::fault::arm("ipc.ring.publish=prob:0.05:" + seed +
                     ",engine.exec.simd=prob:0.2:" + seed +
                     ",engine.exec.fused=prob:0.2:" + seed +
                     ",ipc.futex.wait=prob:0.02:" + seed);
    DaemonOptions options;
    options.endpoint = endpoint;
    options.slots = 8;
    options.sweep_ms = 20;
    options.engine.quarantine_strikes = 2;
    options.engine.probation_ms = 200;
    options.engine.verify_finite = true;
    Daemon daemon(options);
    daemon.start();
    for (;;) ::pause();  // until SIGKILL — no clean shutdown ever runs
  } catch (...) {
    ::_exit(11);
  }
}

TEST(IpcChaos, VerifyingClientsSurviveDaemonKillRestartCycles) {
  const std::string endpoint = unique_endpoint();

  // Clients first, while we are single-threaded.  They park in
  // wait_for_daemon until the first daemon comes up.
  std::vector<pid_t> clients;
  for (int c = 0; c < kClients; ++c) {
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      ::_exit(run_chaos_client(endpoint, static_cast<std::uint64_t>(c + 1)));
    }
    clients.push_back(pid);
  }

  // Kill/restart cycles: each round forks a fresh daemon (which takes the
  // stale segment over), lets it serve briefly, then SIGKILLs it mid-flight.
  for (int round = 0; round < kKillRounds; ++round) {
    const pid_t daemon_pid = ::fork();
    ASSERT_GE(daemon_pid, 0);
    if (daemon_pid == 0) run_chaos_daemon(endpoint, round);

    ASSERT_TRUE(Client::wait_for_daemon(endpoint, 15000))
        << "daemon of round " << round << " never came up";
    std::this_thread::sleep_for(std::chrono::milliseconds(400));

    ASSERT_EQ(::kill(daemon_pid, SIGKILL), 0);
    int status = 0;
    ASSERT_EQ(::waitpid(daemon_pid, &status, 0), daemon_pid);
    ASSERT_TRUE(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL);
  }

  // Final daemon stays up so every client can finish its stream.
  const pid_t final_daemon = ::fork();
  ASSERT_GE(final_daemon, 0);
  if (final_daemon == 0) run_chaos_daemon(endpoint, kKillRounds);
  ASSERT_TRUE(Client::wait_for_daemon(endpoint, 15000));

  for (std::size_t c = 0; c < clients.size(); ++c) {
    int status = 0;
    ASSERT_EQ(::waitpid(clients[c], &status, 0), clients[c]);
    ASSERT_TRUE(WIFEXITED(status)) << "client " << c << " died on a signal";
    EXPECT_EQ(WEXITSTATUS(status), 0)
        << "client " << c
        << " (10=no daemon, 12=too few completions, 13=exception, "
           "42=CORRUPTION)";
  }

  ASSERT_EQ(::kill(final_daemon, SIGKILL), 0);
  int status = 0;
  ASSERT_EQ(::waitpid(final_daemon, &status, 0), final_daemon);
  Shm::unlink(shm_name_for(endpoint));  // the last corpse's segment
}

/// Daemon child body for the crash-during-replay test: no fault injection
/// (the chaos here is all process death), fast sweep so reclamation latency
/// is visible inside the test budget.
void run_replay_daemon(const std::string& endpoint) {
  try {
    DaemonOptions options;
    options.endpoint = endpoint;
    options.slots = 8;
    options.sweep_ms = 25;
    Daemon daemon(options);
    daemon.start();
    for (;;) ::pause();  // until SIGKILL
  } catch (...) {
    ::_exit(11);
  }
}

TEST(IpcChaos, ClientKilledDuringReplayIsSweptAndNeighboursStayExact) {
  // The nastiest client death: not idle, but mid-recovery — a --reconnect
  // client that lost its daemon, re-handshook against the successor, and is
  // replaying its snapshot when SIGKILL lands.  Its half-replayed slot is a
  // corpse with queued requests; the successor daemon's liveness sweep must
  // reclaim it (reclaimed counter), the slot must be reusable, and the
  // surviving neighbour's stream must stay bit-exact throughout.
  const std::string endpoint = "replay-" + std::to_string(::getpid());

  // Both clients forked first, single-threaded, parking in wait_for_daemon.
  // The 100 ms pacing of run_chaos_client means requests regularly straddle
  // the daemon swap and get replayed against the successor.
  const pid_t victim = ::fork();
  ASSERT_GE(victim, 0);
  if (victim == 0) ::_exit(run_chaos_client(endpoint, 31));
  const pid_t neighbour = ::fork();
  ASSERT_GE(neighbour, 0);
  if (neighbour == 0) ::_exit(run_chaos_client(endpoint, 32));

  // Daemon 1: let both clients connect and make progress.
  const pid_t daemon1 = ::fork();
  ASSERT_GE(daemon1, 0);
  if (daemon1 == 0) run_replay_daemon(endpoint);
  ASSERT_TRUE(Client::wait_for_daemon(endpoint, 15000));
  std::this_thread::sleep_for(std::chrono::milliseconds(500));

  // Kill it mid-flight: both clients fall into their reconnect windows.
  ASSERT_EQ(::kill(daemon1, SIGKILL), 0);
  int status = 0;
  ASSERT_EQ(::waitpid(daemon1, &status, 0), daemon1);

  // Daemon 2 takes the stale segment over; the clients' 2 ms initial
  // backoff means they re-handshake and replay almost immediately — which
  // is exactly when the victim dies.
  const pid_t daemon2 = ::fork();
  ASSERT_GE(daemon2, 0);
  if (daemon2 == 0) run_replay_daemon(endpoint);
  ASSERT_TRUE(Client::wait_for_daemon(endpoint, 15000));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  ASSERT_EQ(::kill(victim, SIGKILL), 0);
  ASSERT_EQ(::waitpid(victim, &status, 0), victim);
  ASSERT_TRUE(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL);

  // The neighbour must finish its verified stream despite all of it.
  ASSERT_EQ(::waitpid(neighbour, &status, 0), neighbour);
  ASSERT_TRUE(WIFEXITED(status)) << "neighbour died on a signal";
  EXPECT_EQ(WEXITSTATUS(status), 0)
      << "(10=no daemon, 12=too few completions, 13=exception, "
         "42=CORRUPTION)";

  // Sweep latency: well within a few sweep_ms periods the victim's corpse
  // is reclaimed and its slot serves a fresh tenant.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  {
    auto probe = Client::connect({.endpoint = endpoint});
    EXPECT_GT(probe.stats().reclaimed, 0u)
        << "the mid-replay corpse was never swept";
    double* x = probe.stage(kLogN);
    const auto input = util::random_vector(std::size_t{1} << kLogN, 777);
    std::memcpy(x, input.data(), input.size() * sizeof(double));
    ASSERT_EQ(probe.transform(kLogN, x), Status::kOk);
    std::vector<double> expected = input;
    api::Planner().backend("generated").plan(kLogN).execute(expected.data());
    EXPECT_EQ(
        std::memcmp(x, expected.data(), input.size() * sizeof(double)), 0);
  }

  ASSERT_EQ(::kill(daemon2, SIGKILL), 0);
  ASSERT_EQ(::waitpid(daemon2, &status, 0), daemon2);
  Shm::unlink(shm_name_for(endpoint));
}

}  // namespace
}  // namespace whtlab::ipc
