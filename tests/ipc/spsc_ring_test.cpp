// SpscRing: the single-producer/single-consumer ring both sides of the
// whtd protocol are built from.  Monotonic head/tail (masked, power-of-two
// depth) means full/empty are never ambiguous and wraparound is exercised
// by pushing far past the depth.  The cross-thread test drives a real
// producer/consumer pair through ~1M elements and requires exact FIFO
// order — the publication (release on push, acquire on pop) is what it
// checks.
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>

#include "ipc/spsc_ring.hpp"

namespace whtlab::ipc {
namespace {

using Ring = SpscRing<std::uint64_t, 8>;

TEST(SpscRing, FifoOrderAndCapacity) {
  Ring ring;
  ring.reset();
  EXPECT_TRUE(ring.empty());
  for (std::uint64_t i = 0; i < 8; ++i) {
    EXPECT_TRUE(ring.try_push(i)) << i;
  }
  EXPECT_FALSE(ring.try_push(99)) << "push into a full ring must fail";
  EXPECT_EQ(ring.size(), 8u);
  for (std::uint64_t i = 0; i < 8; ++i) {
    std::uint64_t out = ~0ULL;
    EXPECT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, i);
  }
  std::uint64_t out;
  EXPECT_FALSE(ring.try_pop(out)) << "pop from an empty ring must fail";
}

TEST(SpscRing, WrapsAroundIndefinitely) {
  Ring ring;
  ring.reset();
  // Interleaved push/pop far past the depth: the masked indices wrap while
  // the monotonic counters keep full/empty exact.
  for (std::uint64_t i = 0; i < 1000; ++i) {
    ASSERT_TRUE(ring.try_push(i));
    std::uint64_t out = ~0ULL;
    ASSERT_TRUE(ring.try_pop(out));
    ASSERT_EQ(out, i);
  }
  EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, ResetEmptiesAfterUse) {
  Ring ring;
  ring.reset();
  ASSERT_TRUE(ring.try_push(1));
  ASSERT_TRUE(ring.try_push(2));
  ring.reset();  // slot reclamation drops whatever the dead client queued
  EXPECT_TRUE(ring.empty());
  std::uint64_t out;
  EXPECT_FALSE(ring.try_pop(out));
}

TEST(SpscRing, CrossThreadFifoExactness) {
  constexpr std::uint64_t kCount = 1 << 20;
  Ring ring;
  ring.reset();
  std::thread producer([&ring]() {
    for (std::uint64_t i = 0; i < kCount; ++i) {
      while (!ring.try_push(i)) std::this_thread::yield();
    }
  });
  std::uint64_t expected = 0;
  while (expected < kCount) {
    std::uint64_t out;
    if (!ring.try_pop(out)) {
      std::this_thread::yield();
      continue;
    }
    ASSERT_EQ(out, expected) << "FIFO order broken";
    ++expected;
  }
  producer.join();
  EXPECT_TRUE(ring.empty());
}

}  // namespace
}  // namespace whtlab::ipc
