// SpscRing: the single-producer/single-consumer ring both sides of the
// whtd protocol are built from.  Monotonic head/tail (masked, power-of-two
// depth) means full/empty are never ambiguous and wraparound is exercised
// by pushing far past the depth.  The cross-thread test drives a real
// producer/consumer pair through ~1M elements and requires exact FIFO
// order — the publication (release on push, acquire on pop) is what it
// checks.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>

#include "ipc/futex.hpp"
#include "ipc/spsc_ring.hpp"
#include "util/fault.hpp"

namespace whtlab::ipc {
namespace {

using Ring = SpscRing<std::uint64_t, 8>;

TEST(SpscRing, FifoOrderAndCapacity) {
  Ring ring;
  ring.reset();
  EXPECT_TRUE(ring.empty());
  for (std::uint64_t i = 0; i < 8; ++i) {
    EXPECT_TRUE(ring.try_push(i)) << i;
  }
  EXPECT_FALSE(ring.try_push(99)) << "push into a full ring must fail";
  EXPECT_EQ(ring.size(), 8u);
  for (std::uint64_t i = 0; i < 8; ++i) {
    std::uint64_t out = ~0ULL;
    EXPECT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, i);
  }
  std::uint64_t out;
  EXPECT_FALSE(ring.try_pop(out)) << "pop from an empty ring must fail";
}

TEST(SpscRing, WrapsAroundIndefinitely) {
  Ring ring;
  ring.reset();
  // Interleaved push/pop far past the depth: the masked indices wrap while
  // the monotonic counters keep full/empty exact.
  for (std::uint64_t i = 0; i < 1000; ++i) {
    ASSERT_TRUE(ring.try_push(i));
    std::uint64_t out = ~0ULL;
    ASSERT_TRUE(ring.try_pop(out));
    ASSERT_EQ(out, i);
  }
  EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, ResetEmptiesAfterUse) {
  Ring ring;
  ring.reset();
  ASSERT_TRUE(ring.try_push(1));
  ASSERT_TRUE(ring.try_push(2));
  ring.reset();  // slot reclamation drops whatever the dead client queued
  EXPECT_TRUE(ring.empty());
  std::uint64_t out;
  EXPECT_FALSE(ring.try_pop(out));
}

TEST(SpscRing, Uint32CursorWrapIsSeamless) {
  // The monotonic cursors are 32-bit: a long-lived serving slot WILL wrap
  // them.  Start both just below the wrap (legal only because nobody else
  // touches the ring, same as the reclaim path) and stream across it.
  Ring ring;
  const std::uint32_t start = UINT32_MAX - 3;
  ring.head.store(start, std::memory_order_relaxed);
  ring.tail.store(start, std::memory_order_release);
  EXPECT_TRUE(ring.empty());

  for (std::uint64_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(ring.try_push(i)) << i;  // tail passes UINT32_MAX mid-loop
  }
  EXPECT_FALSE(ring.try_push(99)) << "full detection broke across the wrap";
  EXPECT_EQ(ring.size(), 8u);
  for (std::uint64_t i = 0; i < 8; ++i) {
    std::uint64_t out = ~0ULL;
    ASSERT_TRUE(ring.try_pop(out));  // head wraps while draining
    EXPECT_EQ(out, i) << "FIFO order broke across the wrap";
  }
  EXPECT_TRUE(ring.empty());
  std::uint64_t out;
  EXPECT_FALSE(ring.try_pop(out));
}

TEST(SpscRing, InjectedSpuriousFutexWakeupIsJustARetry) {
  // ipc.futex.wait makes spin_then_wait return immediately with the word
  // unchanged — the spurious wakeup FUTEX_WAIT is allowed to deliver.  The
  // contract every ring waiter is written against: re-check, re-park.
  util::fault::disarm();
  util::fault::arm("ipc.futex.wait=always");
  std::atomic<std::uint32_t> word{7};
  const auto t0 = std::chrono::steady_clock::now();
  // An unbounded wait (timeout < 0) on a word nobody will change: without
  // the injected wakeup this would park forever.
  const std::uint32_t seen = spin_then_wait(word, 7, /*spins=*/8,
                                            /*timeout_ns=*/-1);
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_EQ(seen, 7u) << "spurious return must report the unchanged word";
  EXPECT_LT(elapsed, std::chrono::seconds(1));
  EXPECT_EQ(util::fault::fired("ipc.futex.wait"), 1u);
  util::fault::disarm();
  // Disarmed again, the same wait parks for real until the timeout.
  EXPECT_EQ(spin_then_wait(word, 7, 8, 1000000), 7u);
}

TEST(SpscRing, CheckedOpsMatchPlainOpsOnHonestCursors) {
  Ring ring;
  ring.reset();
  std::uint64_t out = ~0ULL;
  EXPECT_EQ(ring.try_pop_checked(out), RingOp::kEmpty);
  for (std::uint64_t i = 0; i < 8; ++i) {
    EXPECT_EQ(ring.try_push_checked(i), RingOp::kOk) << i;
  }
  EXPECT_EQ(ring.try_push_checked(99), RingOp::kFull)
      << "exactly Depth outstanding is legal fullness, not corruption";
  for (std::uint64_t i = 0; i < 8; ++i) {
    ASSERT_EQ(ring.try_pop_checked(out), RingOp::kOk);
    EXPECT_EQ(out, i);
  }
  EXPECT_EQ(ring.try_pop_checked(out), RingOp::kEmpty);
}

TEST(SpscRing, CorruptTailCursorIsTypedNotOverread) {
  // A hostile producer scribbles its tail far ahead of head: the plain pop
  // would believe the delta and hand out Depth's worth of stale payloads
  // per lap forever.  The checked pop reports the impossible occupancy.
  Ring ring;
  ring.reset();
  ASSERT_TRUE(ring.try_push(42));
  ring.tail.store(ring.head.load(std::memory_order_relaxed) + 9,
                  std::memory_order_release);  // depth is 8: delta 9 is a lie
  std::uint64_t out = ~0ULL;
  EXPECT_EQ(ring.try_pop_checked(out), RingOp::kCorrupt);
  EXPECT_EQ(out, ~0ULL) << "no payload may be surfaced from a corrupt ring";
  // The smallest lie: exactly one past the capacity.
  ring.reset();
  ring.tail.store(9, std::memory_order_release);
  EXPECT_EQ(ring.try_pop_checked(out), RingOp::kCorrupt);
  // Boundary sanity: delta == Depth is a legally full ring for the pop.
  ring.reset();
  ring.tail.store(8, std::memory_order_release);
  EXPECT_EQ(ring.try_pop_checked(out), RingOp::kOk);
}

TEST(SpscRing, CorruptHeadCursorIsTypedForTheProducer) {
  // The consumer cursor scribbled BEHIND the producer beyond capacity: a
  // push trusting the delta would conclude "full" forever (a wedge) or,
  // with head ahead of tail, happily overwrite unconsumed slots.  Checked
  // push reports corruption; hand-corrupted words, both directions.
  Ring ring;
  ring.reset();
  ring.tail.store(100, std::memory_order_release);
  ring.head.store(100 - 9, std::memory_order_release);  // lagging 9 > depth 8
  EXPECT_EQ(ring.try_push_checked(7), RingOp::kCorrupt);
  ring.head.store(100 + 5, std::memory_order_release);  // head AHEAD of tail
  EXPECT_EQ(ring.try_push_checked(7), RingOp::kCorrupt)
      << "head ahead of tail wraps the delta huge — corruption, not space";
  ring.head.store(100 - 8, std::memory_order_release);  // exactly full: legal
  EXPECT_EQ(ring.try_push_checked(7), RingOp::kFull);
  ring.head.store(100, std::memory_order_release);  // honest empty again
  EXPECT_EQ(ring.try_push_checked(7), RingOp::kOk);
}

TEST(SpscRing, CrossThreadFifoExactness) {
  constexpr std::uint64_t kCount = 1 << 20;
  Ring ring;
  ring.reset();
  std::thread producer([&ring]() {
    for (std::uint64_t i = 0; i < kCount; ++i) {
      while (!ring.try_push(i)) std::this_thread::yield();
    }
  });
  std::uint64_t expected = 0;
  while (expected < kCount) {
    std::uint64_t out;
    if (!ring.try_pop(out)) {
      std::this_thread::yield();
      continue;
    }
    ASSERT_EQ(out, expected) << "FIFO order broken";
    ++expected;
  }
  producer.join();
  EXPECT_TRUE(ring.empty());
}

}  // namespace
}  // namespace whtlab::ipc
