// Overload-safe degradation: deadline shedding and credit flow control.
//
// Two independent pressure valves, both typed (never silent):
//   * deadline shedding — a request whose deadline_ns already passed is
//     answered kTimeout BEFORE execution (and before it is charged against
//     any budget): under overload the daemon stops burning cycles on
//     answers nobody is waiting for, while in-deadline traffic is served
//     normally.
//   * credit flow control — per-slot token bucket charging one credit per
//     staged vector; an exhausted client gets typed kThrottled while its
//     neighbours' buckets (and the daemon) are untouched.
//
// The shedding test forges its requests through a raw segment mapping (the
// same protocol-legal claim dance the client library does) because the
// shipped library can't be asked to stamp an already-dead deadline — which
// is itself part of the trust story: expired stamps arrive only from slow,
// buggy, or hostile peers, and the daemon's answer is the same typed
// kTimeout for all three.
#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "api/planner.hpp"
#include "ipc/client.hpp"
#include "ipc/daemon.hpp"
#include "ipc/futex.hpp"
#include "ipc/protocol.hpp"
#include "ipc/shm.hpp"
#include "util/rng.hpp"

namespace whtlab::ipc {
namespace {

std::string unique_endpoint(const char* tag) {
  return std::string("test-") + tag + "-" + std::to_string(::getpid());
}

/// A raw protocol-level tenancy: the test speaks shm directly so it can
/// stamp deadlines the client library never would.
struct RawTenant {
  Shm shm;
  ControlHeader* hdr = nullptr;
  SlotShared* cell = nullptr;
  double* arena = nullptr;
  std::uint64_t generation = 0;
  std::uint32_t counter = 0;

  static RawTenant claim(const std::string& endpoint) {
    RawTenant t;
    t.shm = Shm::open(shm_name_for(endpoint));
    t.hdr = static_cast<ControlHeader*>(t.shm.data());
    Layout layout;
    layout.slot_count = t.hdr->slot_count;
    layout.arena_doubles = t.hdr->arena_doubles;
    for (std::uint32_t s = 0; s < layout.slot_count; ++s) {
      SlotShared* cell = layout.slot(t.shm.data(), s);
      std::uint32_t expected = kFree;
      if (!cell->state.compare_exchange_strong(expected, kClaimed,
                                               std::memory_order_acq_rel)) {
        continue;
      }
      t.cell = cell;
      t.arena = layout.arena(t.shm.data(), s);
      t.generation =
          cell->generation.fetch_add(1, std::memory_order_acq_rel) + 1;
      cell->pid.store(static_cast<std::uint32_t>(::getpid()),
                      std::memory_order_release);
      cell->requests.reset();
      cell->responses.reset();
      cell->state.store(kActive, std::memory_order_release);
      return t;
    }
    throw std::runtime_error("no free slot");
  }

  std::uint64_t push(std::uint32_t n, std::uint32_t count,
                     std::uint64_t deadline_ns) {
    Request request;
    request.seq = (generation << 32) | std::uint64_t{++counter};
    request.n = n;
    request.count = count;
    request.offset = 0;
    request.deadline_ns = deadline_ns;
    EXPECT_TRUE(cell->requests.try_push(request));
    hdr->doorbell.fetch_add(1, std::memory_order_release);
    futex_wake_all(hdr->doorbell);
    return request.seq;
  }

  /// Pops the next response within `ms`, or fails the test.
  Response await_response(int ms = 5000) {
    Response response{};
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
    while (!cell->responses.try_pop(response)) {
      if (std::chrono::steady_clock::now() >= deadline) {
        ADD_FAILURE() << "no response within " << ms << " ms";
        return response;
      }
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    return response;
  }

  void release() {
    cell->pid.store(0, std::memory_order_release);
    cell->state.store(kFree, std::memory_order_release);
  }
};

TEST(Overload, ExpiredRequestsAreShedTypedBeforeExecution) {
  const std::string endpoint = unique_endpoint("shed");
  DaemonOptions options;
  options.endpoint = endpoint;
  options.slots = 2;
  ASSERT_TRUE(options.shed_expired) << "shedding must be the default";
  Daemon daemon(options);
  daemon.start();
  {
    RawTenant t = RawTenant::claim(endpoint);

    // Stage recognizable data, then flood with already-expired requests
    // (deadline_ns=1: the monotonic clock passed that at boot).
    constexpr int kExpired = 6;
    const std::size_t doubles = std::size_t{1} << 6;
    for (std::size_t i = 0; i < doubles; ++i) {
      t.arena[i] = static_cast<double>(i) + 0.25;
    }
    std::vector<std::uint64_t> seqs;
    for (int r = 0; r < kExpired; ++r) {
      seqs.push_back(t.push(6, 1, /*deadline_ns=*/1));
    }
    for (int r = 0; r < kExpired; ++r) {
      const Response response = t.await_response();
      EXPECT_EQ(response.seq, seqs[static_cast<std::size_t>(r)]);
      EXPECT_EQ(static_cast<Status>(response.status), Status::kTimeout)
          << "shedding must be typed, round " << r;
    }
    for (std::size_t i = 0; i < doubles; ++i) {
      ASSERT_EQ(t.arena[i], static_cast<double>(i) + 0.25)
          << "a shed request must never touch the staged data (index " << i
          << ")";
    }

    // The valve is selective: an in-deadline request on the same slot, with
    // the same staging, executes normally.
    const auto input = util::random_vector(doubles, 99);
    std::memcpy(t.arena, input.data(), doubles * sizeof(double));
    const std::uint64_t seq =
        t.push(6, 1, monotonic_ns() + 10'000'000'000ULL);
    const Response served = t.await_response();
    EXPECT_EQ(served.seq, seq);
    EXPECT_EQ(static_cast<Status>(served.status), Status::kOk);
    std::vector<double> expected = input;
    api::Planner().plan(6).execute(expected.data());
    EXPECT_EQ(std::memcmp(t.arena, expected.data(), doubles * sizeof(double)),
              0)
        << "the in-deadline request must be served bit-exact";

    const auto stats = daemon.stats();
    EXPECT_EQ(stats.shed_expired, static_cast<std::uint64_t>(kExpired));
    EXPECT_EQ(stats.protocol_errors, 0u)
        << "an expired deadline is overload, not hostility — no strikes";
    t.release();
  }
  daemon.stop();
}

TEST(Overload, CreditExhaustionThrottlesOnlyTheSpender) {
  const std::string endpoint = unique_endpoint("credits");
  DaemonOptions options;
  options.endpoint = endpoint;
  options.slots = 2;
  options.credit_limit = 4;  // 4 vectors ...
  options.credit_window_ns = 3600ULL * 1000000000ULL;  // ... per hour
  Daemon daemon(options);
  daemon.start();

  auto greedy = Client::connect({.endpoint = endpoint});
  auto polite = Client::connect({.endpoint = endpoint});
  EXPECT_EQ(greedy.credits(), 4u) << "the advisory balance starts full";

  // One credit per staged vector: the 4-credit bucket affords exactly 4
  // single-vector transforms this hour, then typed backpressure.
  double* gx = greedy.stage(6);
  for (int r = 0; r < 4; ++r) {
    ASSERT_EQ(greedy.transform(6, gx), Status::kOk) << "round " << r;
  }
  EXPECT_EQ(greedy.credits(), 0u) << "the advisory balance tracks spends";
  for (int r = 0; r < 3; ++r) {
    EXPECT_EQ(greedy.transform(6, gx), Status::kThrottled) << "round " << r;
  }

  // Buckets are per slot: the polite neighbour still has its own 4.
  double* px = polite.stage(6);
  for (int r = 0; r < 4; ++r) {
    EXPECT_EQ(polite.transform(6, px), Status::kOk) << "round " << r;
  }

  const auto stats = daemon.stats();
  EXPECT_EQ(stats.credit_stalls, 3u);
  EXPECT_EQ(stats.throttled, 0u)
      << "credit stalls are distinct from request-rate throttling";
  daemon.stop();
}

TEST(Overload, BatchCostIsChargedPerVector) {
  const std::string endpoint = unique_endpoint("batchcost");
  DaemonOptions options;
  options.endpoint = endpoint;
  options.slots = 1;
  options.credit_limit = 8;
  options.credit_window_ns = 3600ULL * 1000000000ULL;
  Daemon daemon(options);
  daemon.start();

  auto client = Client::connect({.endpoint = endpoint});
  // A 6-vector batch costs 6 of the 8 credits; the next 3-vector batch no
  // longer fits and is refused whole (no partial execution), but a
  // 2-vector batch still goes through.
  double* x = client.stage(5, 6);
  ASSERT_EQ(client.transform(5, x, 6), Status::kOk);
  EXPECT_EQ(client.credits(), 2u);
  x = client.stage(5, 3);
  EXPECT_EQ(client.transform(5, x, 3), Status::kThrottled);
  x = client.stage(5, 2);
  EXPECT_EQ(client.transform(5, x, 2), Status::kOk);
  EXPECT_EQ(client.credits(), 0u);
  daemon.stop();
}

TEST(Overload, ClientDeadlineKnobIsValidatedAndHarmlessWhenGenerous) {
  const std::string endpoint = unique_endpoint("deadline");
  DaemonOptions options;
  options.endpoint = endpoint;
  options.slots = 1;
  Daemon daemon(options);
  daemon.start();

  try {
    auto bad = Client::connect(
        {.endpoint = endpoint, .request_deadline_ms = 86400001});
    FAIL() << "a deadline past 24h must be refused at connect";
  } catch (const Error& e) {
    EXPECT_EQ(e.status(), Status::kBadRequest);
  }

  // A generous deadline stamps every request but sheds none of them.
  auto client = Client::connect(
      {.endpoint = endpoint, .request_deadline_ms = 10000});
  double* x = client.stage(6);
  for (int r = 0; r < 4; ++r) {
    EXPECT_EQ(client.transform(6, x), Status::kOk) << "round " << r;
  }
  EXPECT_EQ(daemon.stats().shed_expired, 0u);
  daemon.stop();
}

}  // namespace
}  // namespace whtlab::ipc
