// Byzantine-client fuzz: the daemon survives hostile tenants, honest
// traffic stays bit-exact.
//
// Two escalation levels over the same seeded attacker (src/ipc/fuzz.hpp):
//   * a deterministic sweep — eight fixed seeds run sequentially, in
//     process, against one daemon, with an honest client verifying
//     bit-exactness after every seed.  Fixed seeds make any finding replay
//     exactly (`ipc_byzantine --seed N` against a live whtd reproduces the
//     same op stream).
//   * a concurrent storm — four forked attackers racing two forked honest
//     verifiers on one endpoint, the shape the CI byzantine-fuzz smoke runs
//     against a real whtd process.
//
// What "survives" means, concretely: the service thread never crashes or
// wedges (every honest round trip completes in deadline), violations are
// *typed* and *counted* (protocol_errors), repeat offenders lose their slot
// (evictions), stop() still drains cleanly, and the segment is unlinked —
// no /dev/shm litter.  Fork discipline as in ipc_serve_test.cpp: children
// are forked before the Daemon (and its service thread) exists.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "api/planner.hpp"
#include "ipc/client.hpp"
#include "ipc/daemon.hpp"
#include "ipc/fuzz.hpp"
#include "ipc/protocol.hpp"
#include "ipc/shm.hpp"
#include "util/rng.hpp"

namespace whtlab::ipc {
namespace {

std::string unique_endpoint(const char* tag) {
  return std::string("test-") + tag + "-" + std::to_string(::getpid());
}

/// One honest verifying round trip: random input, served transform checked
/// bit-exact against the in-process reference.  The assertion that matters
/// while attackers are scribbling next door.
void verify_roundtrip(Client& client, int n, std::uint64_t seed) {
  const std::size_t doubles = std::size_t{1} << n;
  double* x = client.stage(n);
  const auto input = util::random_vector(doubles, seed);
  std::memcpy(x, input.data(), doubles * sizeof(double));
  ASSERT_EQ(client.transform(n, x), Status::kOk);
  std::vector<double> expected = input;
  api::Planner().plan(n).execute(expected.data());
  ASSERT_EQ(std::memcmp(x, expected.data(), doubles * sizeof(double)), 0)
      << "honest traffic not bit-exact under byzantine pressure";
}

TEST(Byzantine, EightSeedsSequentiallyDaemonSurvivesHonestStaysExact) {
  const std::string endpoint = unique_endpoint("byz-seeds");
  DaemonOptions options;
  options.endpoint = endpoint;
  options.slots = 16;  // headroom: an attacker's final tenancy can leak
                       // until it exits (its pid is this live process)
  options.sweep_ms = 25;
  options.strike_limit = 3;
  Daemon daemon(options);
  daemon.start();

  auto honest = Client::connect({.endpoint = endpoint});
  verify_roundtrip(honest, 8, 1);  // baseline before any attack

  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    FuzzOptions fuzz;
    fuzz.endpoint = endpoint;
    fuzz.seed = seed;
    fuzz.ops = 400;
    FuzzReport report;
    ASSERT_NO_THROW(report = run_byzantine_client(fuzz)) << "seed " << seed;
    EXPECT_EQ(report.ops_applied, fuzz.ops) << "seed " << seed;
    // The daemon is alive and still serving this honest tenant, exactly.
    verify_roundtrip(honest, 8, 100 + seed);
    ASSERT_TRUE(daemon.running()) << "seed " << seed;
  }

  const auto stats = daemon.stats();
  EXPECT_GT(stats.protocol_errors, 0u)
      << "the attack stream must have produced typed, counted violations";
  EXPECT_GT(stats.evictions, 0u)
      << "repeat offenders must have lost their slots";
  daemon.stop();
  EXPECT_FALSE(Shm::exists(shm_name_for(endpoint))) << "/dev/shm litter";
}

int byzantine_child(const std::string& endpoint, std::uint64_t seed) {
  // Give the honest verifiers first pick of the slots: a fuzzer that
  // scribbles its own state word to kFree could otherwise hand its slot to
  // an honest client mid-connect and then corrupt it "legally".
  if (!Client::wait_for_daemon(endpoint, 10000)) return 10;
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  FuzzOptions fuzz;
  fuzz.endpoint = endpoint;
  fuzz.seed = seed;
  fuzz.ops = 400;
  fuzz.op_delay_us = 500;  // ~200 ms of sustained hostility
  try {
    run_byzantine_client(fuzz);
  } catch (...) {
    return 11;
  }
  return 0;
}

int honest_child(const std::string& endpoint, std::uint64_t seed) {
  if (!Client::wait_for_daemon(endpoint, 10000)) return 20;
  try {
    auto client = Client::connect({.endpoint = endpoint});
    const int n = 7;
    const std::size_t doubles = std::size_t{1} << n;
    const auto reference = api::Planner().plan(n);
    for (int r = 0; r < 60; ++r) {
      double* x = client.stage(n);
      const auto input =
          util::random_vector(doubles, seed + static_cast<std::uint64_t>(r));
      std::memcpy(x, input.data(), doubles * sizeof(double));
      if (client.transform(n, x) != Status::kOk) return 21;
      std::vector<double> expected = input;
      reference.execute(expected.data());
      if (std::memcmp(x, expected.data(), doubles * sizeof(double)) != 0) {
        return 22;  // NOT bit-exact
      }
      // Pace the workload across the attackers' 200 ms window.
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  } catch (...) {
    return 23;
  }
  return 0;
}

TEST(Byzantine, ConcurrentStormWithHonestVerifiers) {
  const std::string endpoint = unique_endpoint("byz-storm");
  constexpr int kAttackers = 4;
  constexpr int kHonest = 2;

  // Fork first (no threads exist yet), then bring the daemon up.
  std::vector<pid_t> attackers;
  std::vector<pid_t> verifiers;
  for (int c = 0; c < kAttackers; ++c) {
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      ::_exit(byzantine_child(endpoint,
                              static_cast<std::uint64_t>(c) + 101));
    }
    attackers.push_back(pid);
  }
  for (int c = 0; c < kHonest; ++c) {
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      ::_exit(honest_child(endpoint,
                           5000 * static_cast<std::uint64_t>(c + 1)));
    }
    verifiers.push_back(pid);
  }

  DaemonOptions options;
  options.endpoint = endpoint;
  options.slots = 16;
  options.sweep_ms = 25;
  options.strike_limit = 3;
  Daemon daemon(options);
  daemon.start();

  for (const pid_t pid : verifiers) {
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 0) << "honest verifier " << pid
                                      << " failed under byzantine pressure";
  }
  for (const pid_t pid : attackers) {
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 0) << "attacker " << pid
                                      << " harness failure";
  }

  // Attackers exit without releasing their slots; the liveness sweep must
  // reclaim the corpses so a fresh honest client still gets a slot.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  auto client = Client::connect({.endpoint = endpoint});
  verify_roundtrip(client, 8, 7777);

  EXPECT_GT(daemon.stats().protocol_errors, 0u);
  daemon.stop();
  EXPECT_FALSE(Shm::exists(shm_name_for(endpoint))) << "/dev/shm litter";
}

}  // namespace
}  // namespace whtlab::ipc
