// Crash robustness: the failure modes a multi-process serving daemon must
// absorb.  A SIGKILLed client's slot is reclaimed by the pid-liveness
// sweep within a few periods (and becomes connectable again); a daemon
// that goes away — cleanly or by SIGKILL — resolves client calls to a
// typed kDaemonGone instead of a hang.
//
// Fork discipline as in ipc_serve_test.cpp: every fork happens while the
// forking process is single-threaded (children are forked before any
// Daemon/Engine thread starts in the parent); children leave via _exit.
#include <gtest/gtest.h>

#include <csignal>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>

#include "ipc/client.hpp"
#include "ipc/daemon.hpp"
#include "ipc/protocol.hpp"
#include "ipc/shm.hpp"

namespace whtlab::ipc {
namespace {

std::string unique_endpoint(const char* tag) {
  return std::string("crash-") + tag + "-" + std::to_string(::getpid());
}

DaemonOptions daemon_options(const std::string& endpoint,
                             std::uint32_t slots = 16) {
  DaemonOptions options;
  options.endpoint = endpoint;
  options.slots = slots;
  return options;
}

TEST(IpcCrash, SigkilledClientSlotIsReclaimed) {
  const std::string endpoint = unique_endpoint("client");

  // Child first (we are still single-threaded): it will connect, say so,
  // and then hang on a request stream it never finishes.
  int connected_pipe[2];
  ASSERT_EQ(::pipe(connected_pipe), 0);
  const pid_t victim = ::fork();
  ASSERT_GE(victim, 0);
  if (victim == 0) {
    ::close(connected_pipe[0]);
    if (!Client::wait_for_daemon(endpoint, 10000)) ::_exit(10);
    try {
      auto client = Client::connect({.endpoint = endpoint});
      char byte = 'c';
      (void)!::write(connected_pipe[1], &byte, 1);
      for (;;) ::pause();  // hold the slot until SIGKILL
    } catch (...) {
      ::_exit(11);
    }
  }
  ::close(connected_pipe[1]);

  DaemonOptions options;
  options.endpoint = endpoint;
  options.slots = 1;     // reclamation is observable as re-connectability
  options.sweep_ms = 20;
  Daemon daemon(options);
  daemon.start();

  char byte = 0;
  ASSERT_EQ(::read(connected_pipe[0], &byte, 1), 1) << "victim never connected";
  ::close(connected_pipe[0]);

  // The 1-slot table is now full.
  EXPECT_THROW(Client::connect({.endpoint = endpoint}), Error);

  ASSERT_EQ(::kill(victim, SIGKILL), 0);
  int status = 0;
  ASSERT_EQ(::waitpid(victim, &status, 0), victim);
  ASSERT_TRUE(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL);

  // The sweep must notice the dead pid within a few periods.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (daemon.stats().reclaimed == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(daemon.stats().reclaimed, 1u) << "slot was not reclaimed";

  // ... and the slot is genuinely free again.
  auto replacement = Client::connect({.endpoint = endpoint});
  double* x = replacement.stage(4);
  for (int i = 0; i < 16; ++i) x[i] = 1.0;
  EXPECT_EQ(replacement.transform(4, x), Status::kOk);
  daemon.stop();
}

TEST(IpcCrash, DaemonStopResolvesToTypedErrorNotHang) {
  const std::string endpoint = unique_endpoint("stop");
  DaemonOptions stop_options = daemon_options(endpoint, 2);
  stop_options.timeout_ms = 2000;
  auto daemon = std::make_unique<Daemon>(stop_options);
  daemon->start();

  auto client = Client::connect({.endpoint = endpoint});
  double* x = client.stage(5);
  for (int i = 0; i < 32; ++i) x[i] = static_cast<double>(i);
  ASSERT_EQ(client.transform(5, x), Status::kOk);

  daemon->stop();  // publishes shutdown, wakes every parked waiter

  // Every later call answers kDaemonGone — quickly and typed, not a hang.
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_EQ(client.transform(5, x), Status::kDaemonGone);
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_LT(elapsed, std::chrono::seconds(2)) << "client call hung";
}

TEST(IpcCrash, SigkilledDaemonResolvesToTypedErrorNotHang) {
  const std::string endpoint = unique_endpoint("kill9");

  // The daemon lives in a forked child this time (forked before it has any
  // threads); the parent is the client that outlives it.
  const pid_t daemon_pid = ::fork();
  ASSERT_GE(daemon_pid, 0);
  if (daemon_pid == 0) {
    try {
      Daemon daemon(daemon_options(endpoint, 2));
      daemon.start();
      for (;;) ::pause();  // until SIGKILL — no clean shutdown ever runs
    } catch (...) {
      ::_exit(11);
    }
  }

  ASSERT_TRUE(Client::wait_for_daemon(endpoint, 10000));
  auto client = Client::connect({.endpoint = endpoint, .timeout_ms = 30000});
  double* x = client.stage(5);
  for (int i = 0; i < 32; ++i) x[i] = static_cast<double>(i);
  ASSERT_EQ(client.transform(5, x), Status::kOk);

  ASSERT_EQ(::kill(daemon_pid, SIGKILL), 0);
  int status = 0;
  ASSERT_EQ(::waitpid(daemon_pid, &status, 0), daemon_pid);

  // No shutdown flag was ever published — the client's liveness probe on
  // the recorded daemon pid is what must detect this, well before the
  // 30 s wait deadline.
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_EQ(client.transform(5, x), Status::kDaemonGone);
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_LT(elapsed, std::chrono::seconds(10)) << "daemon death not detected";

  Shm::unlink(shm_name_for(endpoint));  // the corpse's segment
}

TEST(IpcCrash, DestructorDrainIsBounded) {
  const std::string endpoint = unique_endpoint("drain");

  // The daemon lives in a forked child so it can be SIGSTOPped: alive by
  // the pid probe (no kDaemonGone short-circuit) but serving nothing —
  // the worst case for a destructor that waits on in-flight requests.
  const pid_t daemon_pid = ::fork();
  ASSERT_GE(daemon_pid, 0);
  if (daemon_pid == 0) {
    try {
      Daemon daemon(daemon_options(endpoint, 2));
      daemon.start();
      for (;;) ::pause();
    } catch (...) {
      ::_exit(11);
    }
  }
  ASSERT_TRUE(Client::wait_for_daemon(endpoint, 10000));

  Client::Options options;
  options.endpoint = endpoint;
  options.timeout_ms = 30000;  // the per-wait deadline must NOT govern this
  options.drain_ms = 200;
  auto client = std::make_unique<Client>(Client::connect(options));
  double* x = client->stage(5);
  for (int i = 0; i < 32; ++i) x[i] = static_cast<double>(i);

  ASSERT_EQ(::kill(daemon_pid, SIGSTOP), 0);
  Client::Ticket ticket;
  ASSERT_EQ(client->submit(5, x, 1, ticket), Status::kOk);
  ASSERT_EQ(client->inflight(), 1u);

  // ~Client: the drain waits at most drain_ms for the parked daemon, then
  // abandons the request and frees the slot.
  const auto t0 = std::chrono::steady_clock::now();
  client.reset();
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_LT(elapsed, std::chrono::seconds(2))
      << "destructor ignored the drain_ms bound";
  ASSERT_EQ(::kill(daemon_pid, SIGCONT), 0);

  ASSERT_EQ(::kill(daemon_pid, SIGKILL), 0);
  int status = 0;
  ASSERT_EQ(::waitpid(daemon_pid, &status, 0), daemon_pid);
  Shm::unlink(shm_name_for(endpoint));
}

TEST(IpcCrash, StaleSegmentFromDeadDaemonIsTakenOver) {
  const std::string endpoint = unique_endpoint("stale");

  // Manufacture a crashed predecessor: a forked daemon that SIGKILLs
  // itself leaves a fully-initialized segment with a dead recorded pid.
  const pid_t predecessor = ::fork();
  ASSERT_GE(predecessor, 0);
  if (predecessor == 0) {
    try {
      Daemon daemon(daemon_options(endpoint));
      daemon.start();
      ::kill(::getpid(), SIGKILL);
    } catch (...) {
    }
    ::_exit(11);
  }
  int status = 0;
  ASSERT_EQ(::waitpid(predecessor, &status, 0), predecessor);
  ASSERT_TRUE(WIFSIGNALED(status));

  // A successor must take the endpoint over (takeover_stale default) and
  // serve normally.
  Daemon daemon(daemon_options(endpoint));
  daemon.start();
  auto client = Client::connect({.endpoint = endpoint});
  double* x = client.stage(4);
  for (int i = 0; i < 16; ++i) x[i] = 1.0;
  EXPECT_EQ(client.transform(4, x), Status::kOk);
  daemon.stop();
}

}  // namespace
}  // namespace whtlab::ipc
