// The ipc::validate trust boundary, unit-tested on daemon-local snapshots.
//
// These are the exact checks standing between a byzantine client and the
// daemon's execution path (src/ipc/validate.hpp): every verdict class, the
// shift-safety guarantee for hostile n >= 64, the overflow-proof
// count/offset arithmetic, and the RFC-1982-style serial-number seq check
// that tolerates a legitimate 32-bit counter wrap while rejecting replays
// and rewinds.  The integration half — what the daemon DOES with a verdict
// (typed kProtocolError, strikes, eviction) — lives in byzantine_test.cpp.
#include <gtest/gtest.h>

#include <cstdint>

#include "ipc/protocol.hpp"
#include "ipc/validate.hpp"

namespace whtlab::ipc {
namespace {

constexpr std::uint64_t kGen = 7;
constexpr SlotBounds kBounds{/*arena_doubles=*/1 << 20, /*max_n=*/30};

/// A request the shipped client library could produce: generation-stamped
/// seq, shape inside the arena.  Tests mutate one field at a time.
Request honest(std::uint32_t counter = 1) {
  Request request;
  request.seq = (kGen << 32) | counter;
  request.n = 10;
  request.count = 4;
  request.offset = 0;
  return request;
}

TEST(Validate, HonestRequestAccepts) {
  EXPECT_EQ(validate_request(honest(), kGen, 0, kBounds), Verdict::kAccept);
}

TEST(Validate, StaleGenerationIsItsOwnVerdict) {
  // A previous tenant's late push is slot churn, not hostility — the daemon
  // drops it silently, so it must be distinguishable from kBadShape.
  Request request = honest();
  request.seq = ((kGen - 1) << 32) | 1;
  EXPECT_EQ(validate_request(request, kGen, 0, kBounds),
            Verdict::kStaleGeneration);
  // Only the low 32 bits of the slot generation are stamped into seqs.
  request = honest();
  const std::uint64_t huge_gen = (std::uint64_t{5} << 32) | kGen;
  EXPECT_EQ(validate_request(request, huge_gen, 0, kBounds), Verdict::kAccept);
}

TEST(Validate, GenerationIsCheckedBeforeShape) {
  // Garbage from a dead tenant stays "stale", never "hostile": no strikes
  // for the new tenant from the old tenant's leftovers.
  Request request = honest();
  request.seq = ((kGen + 1) << 32) | 1;
  request.n = 64;  // would be kBadShape if shape were checked first
  EXPECT_EQ(validate_request(request, kGen, 0, kBounds),
            Verdict::kStaleGeneration);
}

TEST(Validate, HostileNNeverReachesAShift) {
  // n is range-checked before any `1 << n`: 64, 65, 127 and friends must
  // come back kBadShape without tripping UBSan (this suite runs under the
  // sanitizer CI leg — an unguarded shift would abort the test binary).
  for (const std::uint32_t n : {0u, 31u, 32u, 63u, 64u, 65u, 127u,
                                0xffffffffu}) {
    Request request = honest();
    request.n = n;
    EXPECT_EQ(validate_request(request, kGen, 0, kBounds), Verdict::kBadShape)
        << "n=" << n;
  }
  // Boundary: max_n itself is legal when it fits the arena.
  Request request = honest();
  request.n = 20;  // 2^20 doubles == the whole arena, count 1
  request.count = 1;
  EXPECT_EQ(validate_request(request, kGen, 0, kBounds), Verdict::kAccept);
  request.n = 21;  // one doubling past the arena
  EXPECT_EQ(validate_request(request, kGen, 0, kBounds), Verdict::kBadShape);
}

TEST(Validate, CountTimesSizeIsOverflowProof) {
  Request request = honest();
  request.count = 0;
  EXPECT_EQ(validate_request(request, kGen, 0, kBounds), Verdict::kBadShape);
  // The largest representable count at the largest plannable n: the
  // division form compares against arena/2^n (here 0) instead of computing
  // count * 2^n, so no intermediate can wrap no matter what the client puts
  // in the field.
  request = honest();
  request.n = 30;
  request.count = 0xffffffffu;
  EXPECT_EQ(validate_request(request, kGen, 0, kBounds), Verdict::kBadShape);
  // Exactly filling the arena is legal...
  request = honest();
  request.n = 10;
  request.count = kBounds.arena_doubles >> 10;
  EXPECT_EQ(validate_request(request, kGen, 0, kBounds), Verdict::kAccept);
  // ...one more vector is not.
  request.count += 1;
  EXPECT_EQ(validate_request(request, kGen, 0, kBounds), Verdict::kBadShape);
}

TEST(Validate, OffsetMustKeepTheExtentInsideTheArena) {
  Request request = honest();  // extent = 4 * 2^10 doubles
  request.offset = kBounds.arena_doubles - (4u << 10);
  EXPECT_EQ(validate_request(request, kGen, 0, kBounds), Verdict::kAccept)
      << "flush against the end of the arena is legal";
  request.offset += 1;
  EXPECT_EQ(validate_request(request, kGen, 0, kBounds), Verdict::kBadShape)
      << "one double past the arena end must be rejected";
  // A huge offset that would wrap offset + extent back into range.
  request.offset = ~std::uint64_t{0} - 100;
  EXPECT_EQ(validate_request(request, kGen, 0, kBounds), Verdict::kBadShape);
}

TEST(Validate, SeqReplayAndRewindAreViolations) {
  EXPECT_EQ(validate_request(honest(5), kGen, 5, kBounds), Verdict::kSeqOrder)
      << "replaying the consumed counter";
  EXPECT_EQ(validate_request(honest(3), kGen, 5, kBounds), Verdict::kSeqOrder)
      << "rewinding behind the consumed counter";
  EXPECT_EQ(validate_request(honest(6), kGen, 5, kBounds), Verdict::kAccept);
  EXPECT_EQ(validate_request(honest(500), kGen, 5, kBounds), Verdict::kAccept)
      << "skipping forward only wastes the client's own numbering";
}

TEST(Validate, SeqCounterWrapIsLegitimate) {
  // A long-lived connection wraps the 32-bit counter; serial-number
  // arithmetic keeps 0xffffffff -> 0 -> 1 "ahead" while still refusing the
  // half-space-backwards jump a replayed old counter would be.
  EXPECT_EQ(validate_request(honest(0), kGen, 0xffffffffu, kBounds),
            Verdict::kAccept);
  EXPECT_EQ(validate_request(honest(1), kGen, 0, kBounds), Verdict::kAccept);
  EXPECT_EQ(validate_request(honest(0xfffffff0u), kGen, 5, kBounds),
            Verdict::kSeqOrder)
      << "a backwards half-space jump is a rewind, not a wrap";
}

TEST(Validate, RequestExpiredPredicate) {
  Request request = honest();
  EXPECT_FALSE(request_expired(request, 123456789))
      << "deadline 0 means no deadline";
  request.deadline_ns = 1000;
  EXPECT_FALSE(request_expired(request, 999));
  EXPECT_FALSE(request_expired(request, 1000)) << "expiry is strictly after";
  EXPECT_TRUE(request_expired(request, 1001));
}

TEST(Validate, StrikeCounterCrossesThresholdExactlyOnce) {
  StrikeCounter strikes(3);
  EXPECT_FALSE(strikes.strike());
  EXPECT_FALSE(strikes.strike());
  EXPECT_TRUE(strikes.strike()) << "third strike earns the eviction";
  EXPECT_EQ(strikes.strikes(), 3u);
  strikes.reset();  // eviction hands the slot to a new tenant
  EXPECT_FALSE(strikes.strike());
  EXPECT_EQ(strikes.strikes(), 1u);
}

TEST(Validate, StrikeLimitZeroCountsButNeverEvicts) {
  StrikeCounter strikes(0);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(strikes.strike());
  }
  EXPECT_EQ(strikes.strikes(), 1000u);
}

TEST(Validate, VerdictNamesAreStable) {
  // These strings land in daemon logs; renames break log scraping.
  EXPECT_STREQ(to_string(Verdict::kAccept), "accept");
  EXPECT_STREQ(to_string(Verdict::kStaleGeneration), "stale-generation");
  EXPECT_STREQ(to_string(Verdict::kBadShape), "bad-shape");
  EXPECT_STREQ(to_string(Verdict::kSeqOrder), "seq-order");
}

}  // namespace
}  // namespace whtlab::ipc
