// The whtd telemetry stats page: a forked read-only observer racing a
// serving daemon must never see a torn snapshot.
//
// The page is seqlock-guarded (protocol.hpp): the daemon publishes whole
// snapshots between stats_write_begin/end, observers copy with
// stats_read().  The reader child here hammers snapshots while the parent
// daemon serves live traffic and publishes at an aggressive cadence, and
// asserts structural invariants that a torn read would break: magic and
// version intact, series table in bounds, NUL-terminated backend names,
// min <= max and p50 <= p99 within every populated series, and — with
// decay disabled — per-series counts and engine totals that only ever move
// forward.
//
// Fork discipline (as in ipc_serve_test): the child is forked BEFORE the
// Daemon is constructed, while the process is single-threaded, and leaves
// through _exit so the forked gtest runtime never runs atexit hooks.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstring>
#include <map>
#include <string>
#include <tuple>

#include "ipc/client.hpp"
#include "ipc/daemon.hpp"
#include "ipc/protocol.hpp"
#include "ipc/shm.hpp"
#include "util/rng.hpp"

namespace whtlab::ipc {
namespace {

std::string unique_endpoint(const char* tag) {
  return std::string("test-") + tag + "-" + std::to_string(::getpid());
}

/// The reader child's whole life.  Returns 0 on success; distinct codes
/// name the invariant that failed (they surface in the waitpid status).
int reader_main(const std::string& endpoint) {
  const std::string name = stats_shm_name_for(endpoint);
  // The daemon binds the page during construction; wait for it.
  for (int spin = 0; !Shm::exists(name); ++spin) {
    if (spin > 10000) return 30;  // daemon never appeared
    ::usleep(1000);
  }
  Shm shm;
  try {
    shm = Shm::open_readonly(name);
  } catch (...) {
    return 31;
  }
  if (shm.size() < sizeof(StatsPage)) return 32;
  const auto* shared = static_cast<const StatsPage*>(shm.data());

  static StatsPage page;  // ~18 KiB; keep the child's stack small
  std::map<std::tuple<std::int32_t, std::string, std::uint32_t>,
           std::uint64_t>
      last_count;
  std::uint64_t last_requests = 0;
  int consistent = 0;
  bool saw_traffic = false;
  for (int spin = 0; consistent < 200 || !saw_traffic; ++spin) {
    if (spin > 200000) return 33;  // never saw served traffic
    if (!stats_read(*shared, page)) continue;  // publish storm: retry
    ++consistent;
    const auto& h = page.header;
    if (h.magic != kStatsMagic) return 20;
    if (h.version != kStatsVersion) return 21;
    if (h.series_count > kStatsSeriesCapacity) return 22;
    if (h.totals.requests < last_requests) return 23;  // totals went backward
    last_requests = h.totals.requests;
    if (h.totals.requests > 0) saw_traffic = true;
    for (std::uint32_t i = 0; i < h.series_count; ++i) {
      const StatsSeries& s = page.series[i];
      if (s.batch > 1) return 24;
      if (::strnlen(s.backend, sizeof(s.backend)) >= sizeof(s.backend)) {
        return 25;  // unterminated name: torn string bytes
      }
      if (s.count == 0) continue;
      if (s.min > s.max) return 26;
      if (s.p50 > s.p99) return 27;
      // Decay is off: a series can only accumulate.
      auto& prev = last_count[{s.n, s.backend, s.batch}];
      if (s.count < prev) return 28;
      prev = s.count;
    }
  }
  return 0;
}

TEST(IpcStatsPage, ForkedObserverNeverSeesATornSnapshot) {
  const std::string endpoint = unique_endpoint("statspage");

  const pid_t reader = ::fork();
  ASSERT_GE(reader, 0);
  if (reader == 0) ::_exit(reader_main(endpoint));

  DaemonOptions options;
  options.endpoint = endpoint;
  options.slots = 2;
  options.stats_publish_ms = 2;  // aggressive cadence: maximal seqlock churn
  options.engine.telemetry_decay_window = 0;  // counts must be monotone
  Daemon daemon(options);
  daemon.start();

  auto client = Client::connect({.endpoint = endpoint});
  const int n = 6;
  const std::size_t doubles = std::size_t{1} << n;
  int status = 0;
  // Serve until the reader is satisfied (it needs 200 consistent snapshots
  // with traffic in them) — bounded by the reader's own spin cap.
  for (int r = 0;; ++r) {
    double* x = client.stage(n, 1);
    const auto input =
        util::random_vector(doubles, static_cast<std::uint64_t>(r) + 1);
    std::memcpy(x, input.data(), doubles * sizeof(double));
    ASSERT_EQ(client.transform(n, x, 1), Status::kOk);
    const pid_t done = ::waitpid(reader, &status, WNOHANG);
    if (done == reader) break;
    ASSERT_LT(r, 2000000) << "reader child never finished";
  }
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0)
      << "reader invariant failed (see reader_main for the code)";
}

}  // namespace
}  // namespace whtlab::ipc
