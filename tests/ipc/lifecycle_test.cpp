// Lifecycle harness: the PR-9 zero-downtime contract, end to end.
//
//   * Graceful drain: a draining daemon finishes in-flight work, answers
//     new submissions with the typed kDraining (retry hint attached),
//     waits for clients to consume their responses, flushes wisdom, then
//     stops — and a wedged consumer aborts the drain at --drain-ms with a
//     typed counter instead of hanging it.
//   * Warm-standby handoff: a standby Daemon prewarms on a staging
//     segment, promotes onto the canonical endpoint once the (live,
//     draining) predecessor cedes, and a reconnect-enabled client crosses
//     the swap with zero failed requests.
//   * Rolling restarts: run_supervisor() executes SIGHUP handoff cycles
//     under verifying reconnect-client load; every request of every
//     stream completes kOk and bit-exact, every successor serves warm
//     (prewarmed > 0 published before takeover), and no /dev/shm state
//     leaks — canonical or staging.
//
// Fork discipline as everywhere in tests/ipc: all forks happen while the
// forking process is single-threaded (client children and the supervisor
// child are forked before any Daemon exists in the parent); children
// leave via _exit.
#include <gtest/gtest.h>

#include <csignal>
#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "api/planner.hpp"
#include "api/transform.hpp"
#include "ipc/client.hpp"
#include "ipc/daemon.hpp"
#include "ipc/shm.hpp"
#include "ipc/supervisor.hpp"
#include "util/rng.hpp"

namespace whtlab::ipc {
namespace {

constexpr int kLogN = 6;
constexpr int kRollClients = 3;
constexpr int kHandoffCycles = 3;
constexpr int kRollRequests = 80;

std::string unique_endpoint(const char* tag) {
  return std::string(tag) + "-" + std::to_string(::getpid());
}

std::uint64_t now_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Read-only snapshot of the canonical segment's lifecycle words, taken by
/// name so it tracks the *current* owner across handoffs (the parent must
/// re-open per poll: the name swaps segments mid-promotion).  nullopt while
/// the name is missing or mid-publication.
struct EndpointView {
  std::uint64_t epoch = 0;
  std::uint32_t prewarmed = 0;
  Lifecycle lifecycle = Lifecycle::kStopped;
  std::uint32_t pid = 0;
};

std::optional<EndpointView> probe_endpoint(const std::string& endpoint) {
  try {
    const Shm probe = Shm::open_readonly(shm_name_for(endpoint));
    if (probe.size() < sizeof(ControlHeader)) return std::nullopt;
    const auto* header = static_cast<const ControlHeader*>(probe.data());
    if (header->magic != kMagic) return std::nullopt;
    EndpointView view;
    view.epoch = header->epoch.load(std::memory_order_acquire);
    view.prewarmed = header->prewarmed.load(std::memory_order_acquire);
    view.lifecycle = static_cast<Lifecycle>(
        header->lifecycle.load(std::memory_order_acquire));
    view.pid = header->daemon_pid.load(std::memory_order_acquire);
    return view;
  } catch (const std::exception&) {
    return std::nullopt;  // name unlinked (mid-swap) or never created
  }
}

// ---------------------------------------------------------------------------
// Graceful drain: in-flight completes, new submissions answer kDraining.
// ---------------------------------------------------------------------------

TEST(IpcLifecycle, DrainCompletesInFlightAndRefusesNewSubmissions) {
  const std::string endpoint = unique_endpoint("drain");
  DaemonOptions options;
  options.endpoint = endpoint;
  options.slots = 4;
  options.sweep_ms = 20;
  options.drain_ms = 4000;
  Daemon daemon(options);
  daemon.start();
  EXPECT_EQ(daemon.lifecycle(), Lifecycle::kServing);
  EXPECT_EQ(daemon.epoch(), 1u);

  Client::Options copts;
  copts.endpoint = endpoint;
  copts.timeout_ms = 4000;
  auto client = Client::connect(copts);
  const std::size_t doubles = std::size_t{1} << kLogN;
  const api::Transform reference =
      api::Planner().backend("generated").plan(kLogN);

  // Request 1: submitted, executed, answered — but NOT yet consumed.  The
  // unconsumed response ring holds the drain open deterministically.
  double* x1 = client.stage(kLogN);
  const auto input = util::random_vector(doubles, 7);
  std::memcpy(x1, input.data(), doubles * sizeof(double));
  Client::Ticket t1;
  ASSERT_EQ(client.submit(kLogN, x1, 1, t1), Status::kOk);
  const std::uint64_t give_up = now_ms() + 5000;
  while (daemon.stats().vectors < 1 && now_ms() < give_up) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GE(daemon.stats().vectors, 1u) << "request never executed";

  daemon.drain(3000);
  EXPECT_EQ(daemon.lifecycle(), Lifecycle::kDraining);
  EXPECT_EQ(client.daemon_lifecycle(), Lifecycle::kDraining);

  // Request 2 arrives mid-drain: refused with the typed kDraining and a
  // retry hint bounded by the remaining drain budget.
  double* x2 = client.stage(kLogN);
  std::memcpy(x2, input.data(), doubles * sizeof(double));
  Client::Ticket t2;
  ASSERT_EQ(client.submit(kLogN, x2, 1, t2), Status::kOk);
  EXPECT_EQ(client.wait(t2), Status::kDraining);
  EXPECT_EQ(client.drain_notices(), 1u);
  EXPECT_GE(client.last_drain_hint_ms(), 0);
  EXPECT_LE(client.last_drain_hint_ms(), 3000);

  // The in-flight answer survives the drain bit-exactly.
  EXPECT_EQ(client.wait(t1), Status::kOk);
  std::vector<double> expected = input;
  reference.execute(expected.data());
  EXPECT_EQ(std::memcmp(x1, expected.data(), doubles * sizeof(double)), 0);

  // Both responses consumed: the drain can now run to completion.
  EXPECT_TRUE(daemon.wait_drained(4000));
  EXPECT_EQ(daemon.lifecycle(), Lifecycle::kStopped);
  const Daemon::Stats stats = daemon.stats();
  EXPECT_EQ(stats.drained, 1u);
  EXPECT_EQ(stats.drain_aborted, 0u);
  EXPECT_GE(stats.drain_refused, 1u);

  daemon.stop();
  EXPECT_FALSE(Shm::exists(shm_name_for(endpoint)));  // no /dev/shm litter
}

/// Parked-client child: submits one request and then never consumes its
/// response ring (the SIGSTOPped-consumer shape) — the drain must abort at
/// its deadline with a typed counter, not hang on this client.  Exit codes:
/// 10 no daemon, 12 submit refused, 13 exception; never returns otherwise.
int run_parked_client(const std::string& endpoint) {
  if (!Client::wait_for_daemon(endpoint, 15000)) return 10;
  try {
    Client::Options options;
    options.endpoint = endpoint;
    auto client = Client::connect(options);
    double* x = client.stage(kLogN);
    const std::size_t doubles = std::size_t{1} << kLogN;
    const auto input = util::random_vector(doubles, 11);
    std::memcpy(x, input.data(), doubles * sizeof(double));
    Client::Ticket ticket;
    if (client.submit(kLogN, x, 1, ticket) != Status::kOk) return 12;
    for (;;) ::pause();  // wedged: the answer is never consumed
  } catch (const std::exception&) {
    return 13;
  }
}

TEST(IpcLifecycle, DrainDeadlineAbortsOnWedgedConsumerInsteadOfHanging) {
  const std::string endpoint = unique_endpoint("wedge");

  // Fork the parked client first, while single-threaded.
  const pid_t parked = ::fork();
  ASSERT_GE(parked, 0);
  if (parked == 0) ::_exit(run_parked_client(endpoint));

  DaemonOptions options;
  options.endpoint = endpoint;
  options.slots = 4;
  options.sweep_ms = 20;
  Daemon daemon(options);
  daemon.start();

  // Wait until the parked client's request executed — its response now
  // sits unconsumed in a ring owned by a live pid.
  const std::uint64_t give_up = now_ms() + 10000;
  while (daemon.stats().vectors < 1 && now_ms() < give_up) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_GE(daemon.stats().vectors, 1u) << "parked client never submitted";

  const std::uint64_t t0 = now_ms();
  daemon.drain(300);
  EXPECT_TRUE(daemon.wait_drained(5000)) << "drain hung on a wedged consumer";
  const std::uint64_t elapsed = now_ms() - t0;
  EXPECT_GE(elapsed, 300u) << "drain gave up before its deadline";
  EXPECT_LT(elapsed, 5000u);
  const Daemon::Stats stats = daemon.stats();
  EXPECT_EQ(stats.drain_aborted, 1u);
  EXPECT_EQ(stats.drained, 0u);

  ::kill(parked, SIGKILL);
  int status = 0;
  ASSERT_EQ(::waitpid(parked, &status, 0), parked);
  daemon.stop();
  EXPECT_FALSE(Shm::exists(shm_name_for(endpoint)));
}

// ---------------------------------------------------------------------------
// Warm-standby promotion, in-process: the draining predecessor cedes, the
// epoch chains, and a resilient client crosses the swap.
// ---------------------------------------------------------------------------

TEST(IpcLifecycle, StandbyPromotesOverDrainingPredecessorAndClientFollows) {
  const std::string endpoint = unique_endpoint("promote");
  const std::string canonical = shm_name_for(endpoint);
  const std::string staging = shm_name_for(endpoint + ".next");

  DaemonOptions aopts;
  aopts.endpoint = endpoint;
  aopts.slots = 4;
  aopts.sweep_ms = 20;
  Daemon incumbent(aopts);
  incumbent.start();
  EXPECT_EQ(incumbent.epoch(), 1u);

  Client::Options copts;
  copts.endpoint = endpoint;
  copts.timeout_ms = 4000;
  copts.reconnect = true;
  copts.reconnect_window_ms = 8000;
  copts.backoff_initial_ms = 2;
  copts.backoff_max_ms = 100;
  auto client = Client::connect(copts);
  const std::size_t doubles = std::size_t{1} << kLogN;
  const api::Transform reference =
      api::Planner().backend("generated").plan(kLogN);

  const auto before = util::random_vector(doubles, 21);
  double* x = client.stage(kLogN);
  std::memcpy(x, before.data(), doubles * sizeof(double));
  ASSERT_EQ(client.transform(kLogN, x), Status::kOk);

  // Successor boots against the staging name while the incumbent still
  // owns the canonical endpoint (epoch 0 marks a staging segment).
  DaemonOptions bopts = aopts;
  bopts.standby = true;
  Daemon successor(bopts);
  EXPECT_TRUE(Shm::exists(staging));
  EXPECT_EQ(successor.epoch(), 0u);
  EXPECT_EQ(successor.lifecycle(), Lifecycle::kWarming);

  // Drain the incumbent (no consumers wedged: completes immediately), then
  // promote — the live-but-draining predecessor cedes the canonical name.
  incumbent.drain(2000);
  ASSERT_TRUE(incumbent.wait_drained(4000));
  successor.promote(5000);
  successor.start();
  EXPECT_EQ(successor.epoch(), 2u);  // chained, not restarted
  EXPECT_EQ(successor.lifecycle(), Lifecycle::kServing);
  EXPECT_FALSE(Shm::exists(staging));  // staging name freed by promote

  // The predecessor's stop must NOT tear down the successor's endpoint.
  incumbent.stop();
  EXPECT_TRUE(Shm::exists(canonical));

  // The resilient client re-handshakes onto the successor and its next
  // verified request completes — zero failed requests across the handoff.
  const auto after = util::random_vector(doubles, 22);
  double* y = client.stage(kLogN);
  std::memcpy(y, after.data(), doubles * sizeof(double));
  ASSERT_EQ(client.transform(kLogN, y), Status::kOk);
  std::vector<double> expected = after;
  reference.execute(expected.data());
  EXPECT_EQ(std::memcmp(y, expected.data(), doubles * sizeof(double)), 0);
  EXPECT_EQ(client.reconnects(), 1u);
  EXPECT_EQ(client.daemon_lifecycle(), Lifecycle::kServing);

  successor.stop();
  EXPECT_FALSE(Shm::exists(canonical));
  EXPECT_FALSE(Shm::exists(staging));
}

// ---------------------------------------------------------------------------
// The acceptance gate: supervised SIGHUP rolling restarts under verifying
// reconnect-client load.
// ---------------------------------------------------------------------------

/// Rolling-restart client child: a paced verified stream in which EVERY
/// request must complete kOk and bit-exact — a planned restart is invisible,
/// so unlike the crash-chaos harness there is no "typed loss" allowance.
/// Exit codes: 0 ok, 10 no daemon, 13 exception, 20 a request resolved to a
/// non-kOk status (kDaemonGone included), 42 completed-but-corrupt.
int run_rolling_client(const std::string& endpoint, std::uint64_t seed) {
  if (!Client::wait_for_daemon(endpoint, 20000)) return 10;
  Client::Options options;
  options.endpoint = endpoint;
  options.timeout_ms = 5000;
  options.reconnect = true;
  options.reconnect_window_ms = 10000;
  options.backoff_initial_ms = 2;
  options.backoff_max_ms = 100;
  try {
    auto client = Client::connect(options);
    const api::Transform reference =
        api::Planner().backend("generated").plan(kLogN);
    const std::size_t doubles = std::size_t{1} << kLogN;
    for (int r = 0; r < kRollRequests; ++r) {
      // Paced so the stream spans every SIGHUP handoff the parent runs.
      std::this_thread::sleep_for(std::chrono::milliseconds(25));
      double* x = client.stage(kLogN);
      const auto input =
          util::random_vector(doubles, seed * 1000 + static_cast<unsigned>(r));
      std::memcpy(x, input.data(), doubles * sizeof(double));
      if (client.transform(kLogN, x) != Status::kOk) return 20;
      std::vector<double> expected = input;
      reference.execute(expected.data());
      if (std::memcmp(x, expected.data(), doubles * sizeof(double)) != 0) {
        return 42;
      }
    }
    return 0;
  } catch (const std::exception&) {
    return 13;
  }
}

/// Scoped reaper: gtest ASSERTs return early, and a leaked supervisor
/// keeps serving the endpoint into any later run that reuses the name.
/// On scope exit, any child still alive gets `sig`, a grace window, then
/// SIGKILL.  Children reaped by the test body itself are skipped.
class ChildReaper {
 public:
  explicit ChildReaper(int sig) : sig_(sig) {}
  void track(pid_t pid) { pids_.push_back(pid); }
  ~ChildReaper() {
    for (const pid_t pid : pids_) {
      if (::waitpid(pid, nullptr, WNOHANG) != 0) continue;  // gone/reaped
      ::kill(pid, sig_);
      const std::uint64_t give_up = now_ms() + 8000;
      while (now_ms() < give_up) {
        if (::waitpid(pid, nullptr, WNOHANG) != 0) break;
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
      }
      if (::waitpid(pid, nullptr, WNOHANG) == 0) {
        ::kill(pid, SIGKILL);
        ::waitpid(pid, nullptr, 0);
      }
    }
  }

 private:
  int sig_;
  std::vector<pid_t> pids_;
};

/// Supervisor child body: the exact `whtd --supervise` code path, via the
/// library entry point.
int run_lifecycle_supervisor(const std::string& endpoint,
                             const std::string& wisdom) {
  SupervisorOptions options;
  options.daemon.endpoint = endpoint;
  options.daemon.slots = 8;
  options.daemon.sweep_ms = 20;
  options.daemon.drain_ms = 3000;
  options.daemon.engine.wisdom_file = wisdom;
  options.child.prewarm = true;
  options.child.promote_wait_ms = 10000;
  options.wedge_ms = 20000;
  options.handoff_ready_ms = 20000;
  return run_supervisor(options);
}

TEST(IpcLifecycle, SupervisedRollingRestartsServeWarmWithZeroFailedRequests) {
  const std::string endpoint = unique_endpoint("roll");
  const std::string wisdom =
      "/tmp/whtlab-lifecycle-" + std::to_string(::getpid()) + ".wisdom";
  ::unlink(wisdom.c_str());

  // Wisdom setup in a forked child (planning spawns no threads we would
  // carry across later forks, but the discipline is uniform: heavy work in
  // children, the test parent stays single-threaded until all forks ran).
  {
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      try {
        api::Planner().wisdom_file(wisdom).backend("generated").plan(kLogN);
      } catch (const std::exception&) {
        ::_exit(1);
      }
      ::_exit(0);
    }
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
        << "wisdom setup failed";
  }

  // Verifying clients first; they park in wait_for_daemon.  The reapers
  // cover ASSERT early-returns: clients die hard, the supervisor gets
  // SIGTERM (it stops its serving child before exiting).
  ChildReaper client_reaper(SIGKILL);
  ChildReaper supervisor_reaper(SIGTERM);
  std::vector<pid_t> clients;
  for (int c = 0; c < kRollClients; ++c) {
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      ::_exit(run_rolling_client(endpoint, static_cast<std::uint64_t>(c + 1)));
    }
    clients.push_back(pid);
    client_reaper.track(pid);
  }

  // The supervisor, also forked while single-threaded.
  const pid_t supervisor = ::fork();
  ASSERT_GE(supervisor, 0);
  if (supervisor == 0) ::_exit(run_lifecycle_supervisor(endpoint, wisdom));
  supervisor_reaper.track(supervisor);

  // First generation up: epoch 1, serving, warm (prewarmed from wisdom).
  ASSERT_TRUE(Client::wait_for_daemon(endpoint, 30000));
  std::optional<EndpointView> view;
  std::uint64_t deadline = now_ms() + 10000;
  while (now_ms() < deadline) {
    view = probe_endpoint(endpoint);
    if (view && view->lifecycle == Lifecycle::kServing) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_TRUE(view.has_value());
  ASSERT_EQ(view->lifecycle, Lifecycle::kServing);
  EXPECT_EQ(view->epoch, 1u);
  EXPECT_GT(view->prewarmed, 0u) << "first generation did not serve warm";

  // SIGHUP handoff cycles.  Each must hand the canonical endpoint to a
  // successor generation (epoch + 1) that is already warm when observed
  // serving — the prewarmed word is stamped before takeover.
  std::uint64_t epoch = view->epoch;
  for (int cycle = 0; cycle < kHandoffCycles; ++cycle) {
    ASSERT_EQ(::kill(supervisor, SIGHUP), 0);
    deadline = now_ms() + 30000;
    bool handed_off = false;
    while (now_ms() < deadline) {
      view = probe_endpoint(endpoint);
      if (view && view->epoch == epoch + 1 &&
          view->lifecycle == Lifecycle::kServing && view->prewarmed > 0) {
        handed_off = true;
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    ASSERT_TRUE(handed_off) << "handoff cycle " << cycle << " never completed";
    epoch = view->epoch;
    // Dwell serving between cycles so client streams make progress on
    // every generation.
    std::this_thread::sleep_for(std::chrono::milliseconds(400));
  }

  // Every client stream must have crossed the restarts untouched: every
  // request kOk, every answer bit-exact.
  for (const pid_t pid : clients) {
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status)) << "client died by signal";
    EXPECT_EQ(WEXITSTATUS(status), 0)
        << "a planned restart cost a client a request";
  }

  // Clean shutdown: SIGTERM drains the final generation and the supervisor
  // exits 0 with no /dev/shm litter, canonical or staging.
  ASSERT_EQ(::kill(supervisor, SIGTERM), 0);
  int status = 0;
  ASSERT_EQ(::waitpid(supervisor, &status, 0), supervisor);
  EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
      << "supervisor did not exit cleanly";
  EXPECT_FALSE(Shm::exists(shm_name_for(endpoint)));
  EXPECT_FALSE(Shm::exists(shm_name_for(endpoint + ".next")));
  ::unlink(wisdom.c_str());
}

}  // namespace
}  // namespace whtlab::ipc
