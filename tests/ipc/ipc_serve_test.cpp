// End-to-end whtd protocol: Daemon + Client over a real shm segment.
//
// The headline guarantee is bit-exactness — every vector served through the
// daemon (singles through the coalescing submit() path, batches through the
// arbitrated execute_many) must equal the in-process Transform bit for bit,
// including with >= 4 concurrent client *processes* racing each other.
// Also here: admission control (typed kServerFull when the slot table is
// full), per-client rate limiting (the throttled client gets typed
// backpressure, its neighbour is unaffected), and typed client-side shape
// errors.
//
// Fork discipline: client children are forked BEFORE the Daemon is
// constructed, while this process is still single-threaded; the children
// wait for the daemon to come up.  Children leave through _exit so the
// forked gtest runtime never runs atexit hooks.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstring>
#include <string>
#include <vector>

#include "api/planner.hpp"
#include "ipc/client.hpp"
#include "ipc/daemon.hpp"
#include "ipc/protocol.hpp"
#include "util/rng.hpp"

namespace whtlab::ipc {
namespace {

std::string unique_endpoint(const char* tag) {
  return std::string("test-") + tag + "-" + std::to_string(::getpid());
}

DaemonOptions daemon_options(const std::string& endpoint,
                             std::uint32_t slots = 16) {
  DaemonOptions options;
  options.endpoint = endpoint;
  options.slots = slots;
  return options;
}

/// One client process's workload: `requests` round trips of `count` packed
/// 2^n vectors, each checked bit-exact against the in-process reference.
/// Returns 0 on success (the child's exit code).
int client_workload(const std::string& endpoint, int n, std::size_t count,
                    int requests, std::uint64_t seed) {
  if (!Client::wait_for_daemon(endpoint, 10000)) return 10;
  try {
    auto client = Client::connect({.endpoint = endpoint});
    const auto reference = api::Planner().plan(n);
    const std::size_t doubles = count << n;
    for (int r = 0; r < requests; ++r) {
      double* x = client.stage(n, count);
      const auto input = util::random_vector(
          doubles, seed + static_cast<std::uint64_t>(r));
      std::memcpy(x, input.data(), doubles * sizeof(double));
      if (client.transform(n, x, count) != Status::kOk) return 11;
      std::vector<double> expected = input;
      for (std::size_t v = 0; v < count; ++v) {
        reference.execute(expected.data() + (v << n));
      }
      if (std::memcmp(x, expected.data(), doubles * sizeof(double)) != 0) {
        return 12;  // NOT bit-exact
      }
    }
  } catch (...) {
    return 13;
  }
  return 0;
}

TEST(IpcServe, SingleClientBitExactInProcess) {
  const std::string endpoint = unique_endpoint("serve1");
  Daemon daemon(daemon_options(endpoint, 2));
  daemon.start();

  auto client = Client::connect({.endpoint = endpoint});
  const auto reference = api::Planner().plan(8);
  for (int r = 0; r < 6; ++r) {
    double* x = client.stage(8, 3);
    const auto input = util::random_vector(3 << 8, 42 + r);
    std::memcpy(x, input.data(), input.size() * sizeof(double));
    ASSERT_EQ(client.transform(8, x, 3), Status::kOk);
    std::vector<double> expected = input;
    for (int v = 0; v < 3; ++v) reference.execute(expected.data() + (v << 8));
    EXPECT_EQ(std::memcmp(x, expected.data(), input.size() * sizeof(double)),
              0)
        << "round " << r << " not bit-exact";
  }
  const auto stats = daemon.stats();
  EXPECT_EQ(stats.requests, 6u);
  EXPECT_EQ(stats.vectors, 18u);
  daemon.stop();
}

TEST(IpcServe, FourForkedClientsStayBitExact) {
  const std::string endpoint = unique_endpoint("serve4");
  constexpr int kClients = 5;

  // Fork first (no threads exist yet), then bring the daemon up.
  std::vector<pid_t> children;
  for (int c = 0; c < kClients; ++c) {
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      // Mixed shapes across children: singles (the coalescing path — same-n
      // submits from different processes merge) and packed batches.
      const int n = 6 + c % 3;
      const std::size_t count = (c % 2 == 0) ? 1 : 4;
      ::_exit(client_workload(endpoint, n, count, 12,
                              1000 * static_cast<std::uint64_t>(c + 1)));
    }
    children.push_back(pid);
  }

  Daemon daemon(daemon_options(endpoint, kClients + 1));
  daemon.start();

  for (const pid_t pid : children) {
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 0) << "client " << pid << " failed";
  }
  const auto stats = daemon.stats();
  EXPECT_EQ(stats.requests, static_cast<std::uint64_t>(kClients * 12));
  daemon.stop();
}

TEST(IpcServe, AdmissionControlRejectsWithServerFull) {
  const std::string endpoint = unique_endpoint("admission");
  Daemon daemon(daemon_options(endpoint, 1));
  daemon.start();

  auto first = Client::connect({.endpoint = endpoint});
  try {
    auto second = Client::connect({.endpoint = endpoint});
    FAIL() << "second connect on a 1-slot daemon must throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.status(), Status::kServerFull);
  }
  daemon.stop();
}

TEST(IpcServe, ThrottledClientGetsBackpressureNeighbourDoesNot) {
  const std::string endpoint = unique_endpoint("throttle");
  DaemonOptions options;
  options.endpoint = endpoint;
  options.slots = 2;
  options.rate_limit = 3;                     // 3 requests ...
  options.rate_window_ns = 2000000000ULL;     // ... per 2 s: easy to exceed
  Daemon daemon(options);
  daemon.start();

  auto greedy = Client::connect({.endpoint = endpoint});
  auto polite = Client::connect({.endpoint = endpoint});

  // The greedy client burns its budget and must see typed backpressure.
  double* gx = greedy.stage(6);
  int throttled = 0;
  for (int r = 0; r < 8; ++r) {
    const Status status = greedy.transform(6, gx);
    ASSERT_TRUE(status == Status::kOk || status == Status::kThrottled);
    throttled += status == Status::kThrottled;
  }
  EXPECT_GE(throttled, 5) << "over-budget requests were not throttled";

  // The limiter is per slot: the neighbour's budget is untouched.
  double* px = polite.stage(6);
  for (int r = 0; r < 3; ++r) {
    EXPECT_EQ(polite.transform(6, px), Status::kOk) << "round " << r;
  }
  EXPECT_GE(daemon.stats().throttled, 5u);
  daemon.stop();
}

TEST(IpcServe, TypedShapeErrors) {
  const std::string endpoint = unique_endpoint("shapes");
  DaemonOptions options;
  options.endpoint = endpoint;
  options.slots = 1;
  options.arena_doubles = 1 << 10;
  Daemon daemon(options);
  daemon.start();

  auto client = Client::connect({.endpoint = endpoint});
  try {
    client.stage(12);  // 4096 doubles can never fit a 1024-double arena
    FAIL() << "oversized stage must throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.status(), Status::kTooLarge);
  }
  double* x = client.stage(4);
  Client::Ticket ticket;
  EXPECT_EQ(client.submit(0, x, 1, ticket), Status::kBadRequest);
  EXPECT_EQ(client.submit(31, x, 1, ticket), Status::kBadRequest);
  EXPECT_EQ(client.transform(4, x), Status::kOk);  // slot still healthy
  daemon.stop();
}

TEST(IpcServe, SecondDaemonOnLiveEndpointRefused) {
  const std::string endpoint = unique_endpoint("twodaemons");
  Daemon daemon(daemon_options(endpoint));
  daemon.start();
  try {
    Daemon usurper(daemon_options(endpoint));
    FAIL() << "a live endpoint must not be taken over";
  } catch (const Error& e) {
    EXPECT_EQ(e.status(), Status::kServerFull);
  }
  daemon.stop();
}

}  // namespace
}  // namespace whtlab::ipc
