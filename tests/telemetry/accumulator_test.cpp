// telemetry::Accumulator — the serving path's lock-free running stats.
//
// The contract under test: count/sum/min/max/buckets are EXACT under any
// interleaving (integer fetch_add and monotone CAS lose nothing), the log2
// percentile is monotone and within its power-of-two quantisation, decay
// halves the aging fields without touching the lifetime extremes, and
// reset() opens a fresh epoch.
#include "telemetry/accumulator.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

namespace whtlab::telemetry {
namespace {

TEST(TelemetryAccumulator, RecordsBasicMoments) {
  Accumulator acc;
  for (std::uint64_t v : {10u, 20u, 30u, 40u}) acc.record(v);
  const Stats s = acc.snapshot();
  EXPECT_EQ(s.count, 4u);
  EXPECT_EQ(s.min, 10u);
  EXPECT_EQ(s.max, 40u);
  EXPECT_DOUBLE_EQ(s.sum, 100.0);
  EXPECT_DOUBLE_EQ(s.mean(), 25.0);
  EXPECT_NEAR(s.variance(), 125.0, 1e-9);  // population variance of 10..40
  EXPECT_DOUBLE_EQ(acc.mean(), 25.0);
  EXPECT_EQ(acc.count(), 4u);
}

TEST(TelemetryAccumulator, EmptySeriesIsDefined) {
  const Accumulator acc;
  const Stats s = acc.snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
}

TEST(TelemetryAccumulator, PercentileIsMonotoneAndWithinQuantisation) {
  Accumulator acc;
  // 98 cheap observations around 100 cycles, two 100000-cycle outliers: the
  // p50 must stay in the cheap regime, the p99 must see the outliers.
  for (int i = 0; i < 98; ++i) acc.record(100 + static_cast<std::uint64_t>(i));
  acc.record(100000);
  acc.record(100000);
  const Stats s = acc.snapshot();
  const double p50 = s.percentile(0.50);
  const double p99 = s.percentile(0.99);
  EXPECT_LE(p50, p99);
  EXPECT_LE(p99, static_cast<double>(s.max) * 2.0)
      << "log2 buckets overstate by at most 2x";
  EXPECT_GE(p50, 100.0) << "bucket upper bound never understates its members";
  EXPECT_LT(p50, 2.0 * 198.0);
  EXPECT_GE(p99, 100000.0 / 2.0);
  // Monotone in q across the whole range.
  double last = 0.0;
  for (double q : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
    const double p = s.percentile(q);
    EXPECT_GE(p, last) << "q = " << q;
    last = p;
  }
}

TEST(TelemetryAccumulator, MergeIsFieldwiseAddition) {
  Accumulator a;
  Accumulator b;
  for (std::uint64_t v : {1u, 2u, 3u}) a.record(v);
  for (std::uint64_t v : {100u, 200u}) b.record(v);
  Stats merged = a.snapshot();
  merged.merge(b.snapshot());
  EXPECT_EQ(merged.count, 5u);
  EXPECT_EQ(merged.min, 1u);
  EXPECT_EQ(merged.max, 200u);
  EXPECT_DOUBLE_EQ(merged.sum, 306.0);
  std::uint64_t bucket_total = 0;
  for (const std::uint64_t c : merged.buckets) bucket_total += c;
  EXPECT_EQ(bucket_total, 5u) << "histogram mass equals count";
}

TEST(TelemetryAccumulator, DecayHalvesAgingFieldsKeepsExtremes) {
  Accumulator acc;
  for (int i = 0; i < 100; ++i) acc.record(1000);
  acc.record(7);       // lifetime min
  acc.record(900000);  // lifetime max
  const Stats before = acc.snapshot();
  acc.decay();
  const Stats after = acc.snapshot();
  EXPECT_LT(after.count, before.count);
  EXPECT_GE(after.count, before.count / 2) << "halving, not clearing";
  EXPECT_LT(after.sum, before.sum);
  EXPECT_EQ(after.min, 7u) << "extremes are lifetime, never decayed";
  EXPECT_EQ(after.max, 900000u);
  // The mean survives the halving (numerator and denominator shrink
  // together); wide tolerance for the odd-count rounding.
  EXPECT_NEAR(after.mean(), before.mean(), 0.05 * before.mean());
}

TEST(TelemetryAccumulator, DecayWindowTriggersAutomatically) {
  Accumulator acc;
  acc.set_decay_window(64);
  // Single thread lands on one stripe: its 64th record halves the stripe,
  // so the running count must stay bounded well under the record total.
  for (int i = 0; i < 10000; ++i) acc.record(50);
  EXPECT_LT(acc.count(), 10000u);
  EXPECT_GT(acc.count(), 0u);
  EXPECT_NEAR(acc.mean(), 50.0, 1.0) << "constant series keeps its mean";
}

TEST(TelemetryAccumulator, ResetOpensAFreshEpoch) {
  Accumulator acc;
  for (int i = 0; i < 10; ++i) acc.record(12345);
  acc.reset();
  const Stats s = acc.snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.max, 0u);
  EXPECT_DOUBLE_EQ(s.sum, 0.0);
  acc.record(5);
  EXPECT_EQ(acc.count(), 1u);
  EXPECT_EQ(acc.snapshot().min, 5u) << "old min must not survive the reset";
}

TEST(TelemetryAccumulator, EightThreadConcurrentRecordIsBitStable) {
  // The bit-stability contract: integer totals are exact under contention —
  // 8 threads x 20000 records must land every count, every sum unit, every
  // bucket increment, and the true extremes, with no decay racing.
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 20000;
  Accumulator acc;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&acc, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        // Thread-distinct values covering several buckets, with known
        // global extremes: thread 0 writes the min 1, the max is
        // 7 * 1000 + kPerThread - 1.
        acc.record(static_cast<std::uint64_t>(t) * 1000 + i + 1);
      }
    });
  }
  for (auto& thread : threads) thread.join();

  const Stats s = acc.snapshot();
  EXPECT_EQ(s.count, kThreads * kPerThread);
  EXPECT_EQ(s.min, 1u);
  EXPECT_EQ(s.max, 7u * 1000 + kPerThread);
  // Exact expected sum: sum over t of sum_{i=1..kPerThread} (1000 t + i).
  double expected_sum = 0.0;
  for (int t = 0; t < kThreads; ++t) {
    expected_sum += static_cast<double>(kPerThread) * 1000.0 * t +
                    static_cast<double>(kPerThread) * (kPerThread + 1) / 2.0;
  }
  EXPECT_DOUBLE_EQ(s.sum, expected_sum);
  std::uint64_t bucket_total = 0;
  for (const std::uint64_t c : s.buckets) bucket_total += c;
  EXPECT_EQ(bucket_total, kThreads * kPerThread);
}

}  // namespace
}  // namespace whtlab::telemetry
