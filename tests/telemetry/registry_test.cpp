// telemetry::Registry — the Engine's per-(n, backend, shape) series table
// and its Prometheus-style text export.
#include "telemetry/registry.hpp"

#include <gtest/gtest.h>

#include <string>

namespace whtlab::telemetry {
namespace {

TEST(TelemetryRegistry, SeriesIsStablePerKey) {
  Registry registry;
  Accumulator& a = registry.series(10, "simd", /*batch=*/false);
  Accumulator& b = registry.series(10, "simd", /*batch=*/false);
  EXPECT_EQ(&a, &b) << "same key must return the same accumulator";
  Accumulator& batch = registry.series(10, "simd", /*batch=*/true);
  Accumulator& other = registry.series(10, "fused", /*batch=*/false);
  EXPECT_NE(&a, &batch);
  EXPECT_NE(&a, &other);
  EXPECT_EQ(registry.size(), 3u);
}

TEST(TelemetryRegistry, SnapshotIsKeyOrderedAndComplete) {
  Registry registry;
  registry.series(12, "simd", false).record(100);
  registry.series(8, "generated", false).record(50);
  registry.series(8, "generated", true).record(25);
  const Snapshot snap = registry.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  // std::map key order: (8, generated, single), (8, generated, batch),
  // (12, simd, single) — bool false < true.
  EXPECT_EQ(snap[0].n, 8);
  EXPECT_EQ(snap[0].backend, "generated");
  EXPECT_FALSE(snap[0].batch);
  EXPECT_EQ(snap[0].stats.count, 1u);
  EXPECT_EQ(snap[0].stats.min, 50u);
  EXPECT_TRUE(snap[1].batch);
  EXPECT_EQ(snap[2].n, 12);
  EXPECT_EQ(snap[2].backend, "simd");
}

TEST(TelemetryRegistry, DecayWindowAppliesToExistingAndFutureSeries) {
  Registry registry;
  Accumulator& early = registry.series(4, "generated", false);
  registry.set_decay_window(64);
  Accumulator& late = registry.series(5, "generated", false);
  for (int i = 0; i < 10000; ++i) {
    early.record(10);
    late.record(10);
  }
  EXPECT_LT(early.count(), 10000u) << "window retrofits existing series";
  EXPECT_LT(late.count(), 10000u) << "window applies at creation";
}

TEST(TelemetryRegistry, ToTextEmitsLabeledMetrics) {
  Registry registry;
  Accumulator& series = registry.series(16, "fused", /*batch=*/false);
  for (int i = 0; i < 10; ++i) series.record(1000);
  registry.series(16, "fused", /*batch=*/true);  // empty: count line only
  const std::string text = to_text(registry.snapshot());
  EXPECT_NE(text.find("wht_observations_total{n=\"16\",backend=\"fused\","
                      "shape=\"single\"} 10"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("wht_cycles_per_vector_mean{n=\"16\",backend=\"fused\","
                      "shape=\"single\"} 1000.0"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("wht_cycles_per_vector_p99"), std::string::npos);
  EXPECT_NE(text.find("shape=\"batch\"} 0"), std::string::npos)
      << "empty series still exports its count";
  EXPECT_EQ(text.find("wht_cycles_per_vector_mean{n=\"16\",backend=\"fused\","
                      "shape=\"batch\"}"),
            std::string::npos)
      << "no distribution lines for an empty series";
}

TEST(TelemetryRegistry, EmptyRegistryExportsNothing) {
  const Registry registry;
  EXPECT_TRUE(to_text(registry.snapshot()).empty());
  EXPECT_EQ(registry.size(), 0u);
}

}  // namespace
}  // namespace whtlab::telemetry
