// Runtime CPU dispatch: level ordering, width mapping, forced scalar
// fallback, and the env-value parser.  These tests must pass on any host —
// including one with no AVX at all — because force_level() can only lower
// the active level, never raise it past what CPUID reports.
#include "simd/cpu_features.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/executor.hpp"
#include "core/plan.hpp"
#include "simd/simd_executor.hpp"
#include "util/aligned_buffer.hpp"
#include "util/rng.hpp"

namespace whtlab::simd {
namespace {

class DispatchTest : public ::testing::Test {
 protected:
  void TearDown() override { reset_forced_level(); }
};

TEST_F(DispatchTest, DetectedLevelIsStable) {
  EXPECT_EQ(detected_level(), detected_level());
  EXPECT_GE(detected_level(), SimdLevel::kScalar);
}

TEST_F(DispatchTest, ActiveDefaultsToDetected) {
  // No WHTLAB_SIMD is set in the test environment and nothing is forced.
  EXPECT_EQ(active_level(), detected_level());
}

TEST_F(DispatchTest, VectorWidthMapping) {
  EXPECT_EQ(vector_width(SimdLevel::kScalar), 1);
  EXPECT_EQ(vector_width(SimdLevel::kAvx2), 4);
  EXPECT_EQ(vector_width(SimdLevel::kAvx512), 8);
}

TEST_F(DispatchTest, ToStringCoversAllLevels) {
  EXPECT_STREQ(to_string(SimdLevel::kScalar), "scalar");
  EXPECT_STREQ(to_string(SimdLevel::kAvx2), "avx2");
  EXPECT_STREQ(to_string(SimdLevel::kAvx512), "avx512");
}

TEST_F(DispatchTest, ForceLowersButNeverRaises) {
  force_level(SimdLevel::kScalar);
  EXPECT_EQ(active_level(), SimdLevel::kScalar);
  // Forcing above the detected level cannot grant an ISA the host lacks.
  force_level(SimdLevel::kAvx512);
  EXPECT_LE(active_level(), detected_level());
  reset_forced_level();
  EXPECT_EQ(active_level(), detected_level());
}

TEST_F(DispatchTest, ParseLevelAcceptsKnownNamesOnly) {
  EXPECT_EQ(parse_level("scalar"), SimdLevel::kScalar);
  EXPECT_EQ(parse_level("avx2"), SimdLevel::kAvx2);
  EXPECT_EQ(parse_level("avx512"), SimdLevel::kAvx512);
  EXPECT_EQ(parse_level("auto"), detected_level());
  EXPECT_THROW(parse_level("sse9"), std::invalid_argument);
  EXPECT_THROW(parse_level(""), std::invalid_argument);
}

TEST_F(DispatchTest, ForcedScalarFallbackMatchesCoreExecute) {
  // The portable path every binary can take regardless of CPUID: with the
  // level forced to scalar, simd::execute must be the plain interpreter.
  force_level(SimdLevel::kScalar);
  const core::Plan plan = core::Plan::balanced_binary(12, 5);
  util::AlignedBuffer x(plan.size());
  util::AlignedBuffer reference(plan.size());
  util::Rng rng(41);
  for (std::uint64_t i = 0; i < plan.size(); ++i) {
    x[i] = reference[i] = rng.uniform(-1, 1);
  }
  simd::execute(plan, x.data());
  core::execute(plan, reference.data());
  for (std::uint64_t i = 0; i < plan.size(); ++i) {
    ASSERT_EQ(x[i], reference[i]) << i;
  }
}

}  // namespace
}  // namespace whtlab::simd
