// Exhaustive parity of the SIMD executor against the scalar interpreter:
// every size up to 2^20, several plan shapes per size, in-place / strided /
// out-of-place / batched paths, at every SIMD level this host can dispatch
// to.  Equality is bitwise (ASSERT_EQ on doubles): the SIMD walk performs
// the same butterflies in the same stage order, so there is no tolerance to
// hide an alignment or indexing bug behind.  The whole suite also runs
// under the CI ASan/UBSan job, which is what catches lane overruns.
#include "simd/simd_executor.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "api/wht.hpp"
#include "core/executor.hpp"
#include "core/plan.hpp"
#include "simd/cpu_features.hpp"
#include "util/aligned_buffer.hpp"
#include "util/rng.hpp"

namespace whtlab::simd {
namespace {

std::vector<SimdLevel> dispatchable_levels() {
  std::vector<SimdLevel> levels{SimdLevel::kScalar};
  if (detected_level() >= SimdLevel::kAvx2) levels.push_back(SimdLevel::kAvx2);
  if (detected_level() >= SimdLevel::kAvx512) levels.push_back(SimdLevel::kAvx512);
  return levels;
}

/// A cross-section of the plan space at size 2^n: deep unit-stride chains
/// (right recursive), maximal stride accumulation (iterative), big leaves,
/// and mixed trees.
std::vector<core::Plan> plan_shapes(int n) {
  std::vector<core::Plan> plans;
  plans.push_back(core::Plan::right_recursive(n));
  plans.push_back(core::Plan::left_recursive(n));
  plans.push_back(core::Plan::iterative(n));
  plans.push_back(core::Plan::balanced_binary(n, 4));
  if (n > core::kMaxUnrolled) {
    plans.push_back(core::Plan::iterative_radix(n, core::kMaxUnrolled));
  }
  return plans;
}

class ForcedLevel {
 public:
  explicit ForcedLevel(SimdLevel level) { force_level(level); }
  ~ForcedLevel() { reset_forced_level(); }
};

class SimdParityTest : public ::testing::TestWithParam<SimdLevel> {};

TEST_P(SimdParityTest, AllSizesAllShapesUnitStride) {
  const SimdLevel level = GetParam();
  for (int n = 1; n <= 20; ++n) {
    for (const core::Plan& plan : plan_shapes(n)) {
      util::AlignedBuffer x(plan.size());
      util::AlignedBuffer reference(plan.size());
      util::Rng rng(static_cast<std::uint64_t>(n) * 131 + 7);
      for (std::uint64_t i = 0; i < plan.size(); ++i) {
        x[i] = reference[i] = rng.uniform(-1, 1);
      }
      execute(plan, x.data(), 1, level);
      core::execute(plan, reference.data());
      for (std::uint64_t i = 0; i < plan.size(); ++i) {
        ASSERT_EQ(x[i], reference[i])
            << "level=" << to_string(level) << " n=" << n
            << " plan=" << plan.to_string() << " i=" << i;
      }
    }
  }
}

TEST_P(SimdParityTest, StridedLeavesGapsUntouched) {
  const SimdLevel level = GetParam();
  for (int n = 1; n <= 12; ++n) {
    for (const std::ptrdiff_t stride : {2, 3, 7}) {
      const core::Plan plan = core::Plan::balanced_binary(n, 4);
      const std::uint64_t size = plan.size();
      util::AlignedBuffer strided(size * static_cast<std::uint64_t>(stride));
      util::AlignedBuffer dense(size);
      util::Rng rng(static_cast<std::uint64_t>(n) * 17 + 3);
      strided.fill(-9.0);  // sentinels between the strided elements
      for (std::uint64_t i = 0; i < size; ++i) {
        const double v = rng.uniform(-1, 1);
        strided[i * static_cast<std::uint64_t>(stride)] = v;
        dense[i] = v;
      }
      execute(plan, strided.data(), stride, level);
      core::execute(plan, dense.data());
      for (std::uint64_t i = 0; i < size; ++i) {
        ASSERT_EQ(strided[i * static_cast<std::uint64_t>(stride)], dense[i])
            << "level=" << to_string(level) << " n=" << n
            << " stride=" << stride << " i=" << i;
      }
      for (std::uint64_t i = 0; i + 1 < size; ++i) {
        for (std::ptrdiff_t off = 1; off < stride; ++off) {
          ASSERT_EQ(strided[i * static_cast<std::uint64_t>(stride) +
                            static_cast<std::uint64_t>(off)],
                    -9.0)
              << "sentinel clobbered at i=" << i << " off=" << off;
        }
      }
    }
  }
}

TEST_P(SimdParityTest, ExecuteManyInterleavedAndRemainder) {
  const SimdLevel level = GetParam();
  const ForcedLevel forced(level);
  // Counts straddle the interleave width on every level: remainders of all
  // residues mod 4 and mod 8, plus fewer-than-a-group batches.
  for (int n : {1, 4, 8, 10, 12}) {
    const core::Plan plan = core::Plan::balanced_binary(n, 4);
    const std::uint64_t size = plan.size();
    for (std::size_t count : {std::size_t{1}, std::size_t{3}, std::size_t{4},
                              std::size_t{8}, std::size_t{13}, std::size_t{17}}) {
      for (const std::uint64_t pad : {std::uint64_t{0}, std::uint64_t{5}}) {
        const std::uint64_t dist = size + pad;
        util::AlignedBuffer batch(count * dist);
        std::vector<double> reference(count * dist, -4.0);
        util::Rng rng(static_cast<std::uint64_t>(n) * 1000 + count);
        batch.fill(-4.0);  // pad sentinels
        for (std::size_t v = 0; v < count; ++v) {
          for (std::uint64_t i = 0; i < size; ++i) {
            const double value = rng.uniform(-1, 1);
            batch[v * dist + i] = reference[v * dist + i] = value;
          }
        }
        for (int threads : {1, 3}) {
          util::AlignedBuffer work(count * dist);
          for (std::uint64_t i = 0; i < count * dist; ++i) work[i] = batch[i];
          execute_many(plan, work.data(), count,
                       static_cast<std::ptrdiff_t>(dist), threads);
          for (std::size_t v = 0; v < count; ++v) {
            std::vector<double> expect(reference.begin() + v * dist,
                                       reference.begin() + v * dist + size);
            core::execute(plan, expect.data());
            for (std::uint64_t i = 0; i < size; ++i) {
              ASSERT_EQ(work[v * dist + i], expect[i])
                  << "level=" << to_string(level) << " n=" << n
                  << " count=" << count << " pad=" << pad
                  << " threads=" << threads << " v=" << v << " i=" << i;
            }
            for (std::uint64_t i = size; i < dist; ++i) {
              ASSERT_EQ(work[v * dist + i], -4.0) << "pad clobbered";
            }
          }
        }
      }
    }
  }
}

TEST_P(SimdParityTest, ExecuteManyLargeSizeFallbackPath) {
  // n*width beyond the interleave scratch cap takes the per-vector path.
  const SimdLevel level = GetParam();
  const ForcedLevel forced(level);
  const core::Plan plan = core::Plan::balanced_binary(20, 8);
  const std::uint64_t size = plan.size();
  const std::size_t count = 3;
  util::AlignedBuffer work(count * size);
  std::vector<double> reference(count * size);
  util::Rng rng(99);
  for (std::uint64_t i = 0; i < count * size; ++i) {
    work[i] = reference[i] = rng.uniform(-1, 1);
  }
  execute_many(plan, work.data(), count, static_cast<std::ptrdiff_t>(size), 2);
  for (std::size_t v = 0; v < count; ++v) {
    core::execute(plan, reference.data() + v * size);
    for (std::uint64_t i = 0; i < size; ++i) {
      ASSERT_EQ(work[v * size + i], reference[v * size + i]) << v << " " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(DispatchableLevels, SimdParityTest,
                         ::testing::ValuesIn(dispatchable_levels()),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

TEST(SimdBackendFacade, RegisteredAndRoutesExecuteMany) {
  auto& registry = api::BackendRegistry::global();
  ASSERT_TRUE(registry.contains("simd"));
  auto t = api::Planner().backend("simd").plan(10);
  EXPECT_EQ(t.backend_name(), "simd");

  const std::size_t count = 9;  // 8 + 4 + 1 across widths
  std::vector<double> batch(count * t.size());
  util::Rng rng(7);
  for (auto& v : batch) v = rng.uniform(-1, 1);
  std::vector<double> reference = batch;

  t.execute_many(batch.data(), count);
  auto scalar = api::Planner().fixed(t.plan()).backend("generated").plan();
  scalar.execute_many(reference.data(), count);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    ASSERT_EQ(batch[i], reference[i]) << i;
  }
}

TEST(SimdBackendFacade, ExecuteCopyAndApplyMatchGenerated) {
  auto simd_t = api::Planner().fixed(core::Plan::balanced_binary(11, 5))
                    .backend("simd")
                    .plan();
  auto scalar_t = api::Planner().fixed(simd_t.plan()).plan();
  std::vector<double> in(simd_t.size());
  util::Rng rng(19);
  for (auto& v : in) v = rng.uniform(-1, 1);
  std::vector<double> out_simd(simd_t.size());
  std::vector<double> out_scalar(simd_t.size());
  simd_t.execute_copy(in.data(), out_simd.data());
  scalar_t.execute_copy(in.data(), out_scalar.data());
  EXPECT_EQ(out_simd, out_scalar);
  EXPECT_EQ(simd_t.apply(in), scalar_t.apply(in));
}

TEST(SimdBackendFacade, ThreadsFanOutBatchChunks) {
  api::BackendOptions options;
  options.threads = 4;
  auto backend = api::BackendRegistry::global().create("simd", options);
  const core::Plan plan = core::Plan::balanced_binary(9, 4);
  const std::size_t count = 33;
  std::vector<double> batch(count * plan.size());
  util::Rng rng(23);
  for (auto& v : batch) v = rng.uniform(-1, 1);
  std::vector<double> reference = batch;
  backend->run_many(plan, batch.data(), count,
                    static_cast<std::ptrdiff_t>(plan.size()));
  for (std::size_t v = 0; v < count; ++v) {
    core::execute(plan, reference.data() + v * plan.size());
  }
  EXPECT_EQ(batch, reference);
}

}  // namespace
}  // namespace whtlab::simd
