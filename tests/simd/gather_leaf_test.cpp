// AVX-512 gather/scatter strided-leaf parity: the vgatherqpd/vscatterqpd
// path must be bit-identical to the scalar codelets on every strided shape
// that reaches it — same butterflies, same stage order, EXPECT_EQ on
// doubles, exactly like the XOR-flip and lockstep kernels before it.
// Skipped (not failed) on hosts that do not dispatch AVX-512.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/codelet.hpp"
#include "core/executor.hpp"
#include "core/plan.hpp"
#include "simd/cpu_features.hpp"
#include "simd/simd_executor.hpp"
#include "util/rng.hpp"

namespace whtlab::simd {
namespace {

class ForcedLevel {
 public:
  explicit ForcedLevel(SimdLevel level) { force_level(level); }
  ~ForcedLevel() { reset_forced_level(); }
};

/// Runs `plan` strided through the SIMD executor and the scalar reference
/// on identical data; asserts bitwise equality everywhere (including the
/// untouched gap elements).
void expect_strided_parity(const core::Plan& plan, std::ptrdiff_t stride) {
  const std::uint64_t n = plan.size();
  const std::uint64_t extent =
      static_cast<std::uint64_t>(stride) * (n - 1) + 1;
  std::vector<double> x(extent), reference(extent);
  util::Rng rng(n * 1000 + static_cast<std::uint64_t>(stride));
  for (std::uint64_t i = 0; i < extent; ++i) {
    x[i] = reference[i] = rng.uniform(-1, 1);
  }
  execute(plan, x.data(), stride);
  core::execute_node(plan.root(), reference.data(), stride,
                     core::codelet_table(core::CodeletBackend::kGenerated));
  for (std::uint64_t i = 0; i < extent; ++i) {
    ASSERT_EQ(x[i], reference[i])
        << plan.to_string() << " stride " << stride << " element " << i;
  }
}

TEST(GatherLeaf, StridedLeavesMatchScalarBitwise) {
  if (detected_level() < SimdLevel::kAvx512) {
    GTEST_SKIP() << "host does not dispatch AVX-512";
  }
  const ForcedLevel forced(SimdLevel::kAvx512);
  // Leaves of every gatherable size, at power-of-two and odd strides (the
  // kernel multiplies the stride into its index vector, so nothing in it
  // assumes powers of two).
  for (int k = 3; k <= core::kMaxUnrolled; ++k) {
    for (const std::ptrdiff_t stride : {2, 3, 7, 8, 64, 1021}) {
      expect_strided_parity(core::Plan::small(k), stride);
    }
  }
}

TEST(GatherLeaf, StridedTreesRouteLeavesThroughGather) {
  if (detected_level() < SimdLevel::kAvx512) {
    GTEST_SKIP() << "host does not dispatch AVX-512";
  }
  const ForcedLevel forced(SimdLevel::kAvx512);
  // Whole trees entered at stride > 1: every leaf below runs at an
  // accumulated stride, so the gather path carries the entire walk.
  for (int n : {6, 9, 12}) {
    for (const auto& plan :
         {core::Plan::balanced_binary(n, 4), core::Plan::iterative_radix(n, 4),
          core::Plan::right_recursive(n)}) {
      for (const std::ptrdiff_t stride : {2, 5, 16}) {
        expect_strided_parity(plan, stride);
      }
    }
  }
}

TEST(GatherLeaf, UnitStrideStillTakesTheShuffleCodelet) {
  if (detected_level() < SimdLevel::kAvx512) {
    GTEST_SKIP() << "host does not dispatch AVX-512";
  }
  const ForcedLevel forced(SimdLevel::kAvx512);
  // stride == 1 must stay on leaf_unit (no gather overhead on the hot
  // contiguous path); parity is the observable contract.
  expect_strided_parity(core::Plan::small(8), 1);
  expect_strided_parity(core::Plan::balanced_binary(12, 6), 1);
}

}  // namespace
}  // namespace whtlab::simd
