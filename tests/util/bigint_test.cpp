#include "util/bigint.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace whtlab::util {
namespace {

TEST(BigInt, DefaultIsZero) {
  BigInt z;
  EXPECT_TRUE(z.is_zero());
  EXPECT_EQ(z.to_string(), "0");
  EXPECT_EQ(z.bit_length(), 0u);
  EXPECT_EQ(z.to_double(), 0.0);
}

TEST(BigInt, FromU64RoundTrips) {
  for (std::uint64_t v : {0ULL, 1ULL, 42ULL, 999999937ULL, ~0ULL}) {
    BigInt b(v);
    EXPECT_TRUE(b.fits_u64());
    EXPECT_EQ(b.value64(), v);
    EXPECT_EQ(b.to_string(), std::to_string(v));
  }
}

TEST(BigInt, AdditionWithCarryAcrossLimbs) {
  BigInt a(~0ULL);
  a += BigInt(1);
  EXPECT_EQ(a.to_string(), "18446744073709551616");  // 2^64
  EXPECT_FALSE(a.fits_u64());
  EXPECT_EQ(a.bit_length(), 65u);
}

TEST(BigInt, SubtractionWithBorrow) {
  BigInt a(~0ULL);
  a += BigInt(5);  // 2^64 + 4
  a -= BigInt(10);
  EXPECT_EQ(a.to_string(), "18446744073709551610");  // 2^64 - 6
}

TEST(BigInt, SubtractToZeroNormalizes) {
  BigInt a(123);
  a -= BigInt(123);
  EXPECT_TRUE(a.is_zero());
}

TEST(BigInt, SubtractionUnderflowThrows) {
  BigInt a(5);
  EXPECT_THROW(a -= BigInt(6), std::underflow_error);
}

TEST(BigInt, MultiplicationSmall) {
  EXPECT_EQ((BigInt(123456789) * BigInt(987654321)).to_string(),
            "121932631112635269");
}

TEST(BigInt, MultiplicationMultiLimb) {
  // (2^64)^2 = 2^128
  BigInt a(~0ULL);
  a += BigInt(1);
  EXPECT_EQ((a * a).to_string(), "340282366920938463463374607431768211456");
}

TEST(BigInt, MultiplyByZero) {
  BigInt a(999);
  a *= BigInt(0);
  EXPECT_TRUE(a.is_zero());
}

TEST(BigInt, PowerOfSevenMatchesKnownValue) {
  // 7^30, relevant scale for plan-space counts (~7^n).
  BigInt p(1);
  for (int i = 0; i < 30; ++i) p *= BigInt(7);
  EXPECT_EQ(p.to_string(), "22539340290692258087863249");
}

TEST(BigInt, ComparisonTotalOrder) {
  BigInt big(~0ULL);
  big += BigInt(1);
  EXPECT_LT(BigInt(3), BigInt(5));
  EXPECT_GT(big, BigInt(~0ULL));
  EXPECT_EQ(BigInt(7), BigInt(7));
  EXPECT_LE(BigInt(7), BigInt(7));
  EXPECT_NE(BigInt(7), BigInt(8));
}

TEST(BigInt, DivSmallReturnsRemainder) {
  BigInt a = BigInt::from_decimal("1000000000000000000000007");
  const std::uint64_t r = a.div_small(1000);
  EXPECT_EQ(r, 7u);
  EXPECT_EQ(a.to_string(), "1000000000000000000000");
}

TEST(BigInt, DivByZeroThrows) {
  BigInt a(10);
  EXPECT_THROW(a.div_small(0), std::domain_error);
}

TEST(BigInt, FromDecimalRoundTrip) {
  const std::string text = "123456789012345678901234567890123456789";
  EXPECT_EQ(BigInt::from_decimal(text).to_string(), text);
  EXPECT_THROW(BigInt::from_decimal("12a3"), std::invalid_argument);
}

TEST(BigInt, ToDoubleApproximates) {
  BigInt p(1);
  for (int i = 0; i < 40; ++i) p *= BigInt(10);
  EXPECT_NEAR(p.to_double(), 1e40, 1e25);
}

TEST(BigInt, BitAccess) {
  BigInt a(0b1010);
  EXPECT_FALSE(a.bit(0));
  EXPECT_TRUE(a.bit(1));
  EXPECT_FALSE(a.bit(2));
  EXPECT_TRUE(a.bit(3));
  EXPECT_FALSE(a.bit(64));  // out of range = 0
}

TEST(BigInt, RandomBelowIsInRangeAndCoversValues) {
  Rng rng(5);
  const BigInt bound(10);
  std::vector<int> seen(10, 0);
  for (int i = 0; i < 2000; ++i) {
    const BigInt r = BigInt::random_below(bound, rng);
    ASSERT_LT(r, bound);
    ++seen[r.value64()];
  }
  for (int count : seen) EXPECT_GT(count, 100);  // roughly uniform
}

TEST(BigInt, RandomBelowMultiLimb) {
  Rng rng(6);
  BigInt bound(~0ULL);
  bound *= BigInt(12345);
  for (int i = 0; i < 100; ++i) {
    EXPECT_LT(BigInt::random_below(bound, rng), bound);
  }
}

TEST(BigInt, RandomBelowZeroThrows) {
  Rng rng(1);
  EXPECT_THROW(BigInt::random_below(BigInt(0), rng), std::domain_error);
}

}  // namespace
}  // namespace whtlab::util
