// Tests for the small utility pieces: aligned buffers, CSV escaping, text
// tables, CLI parsing, env parsing.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/aligned_buffer.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/env.hpp"
#include "util/table.hpp"

namespace whtlab::util {
namespace {

TEST(AlignedBuffer, AlignmentAndSize) {
  AlignedBuffer buf(1000);
  EXPECT_EQ(buf.size(), 1000u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buf.data()) % kCacheLineBytes, 0u);
}

TEST(AlignedBuffer, FillAndIndex) {
  AlignedBuffer buf(16);
  buf.fill(2.5);
  for (std::size_t i = 0; i < buf.size(); ++i) EXPECT_EQ(buf[i], 2.5);
  buf[3] = -1.0;
  EXPECT_EQ(buf[3], -1.0);
}

TEST(AlignedBuffer, MoveTransfersOwnership) {
  AlignedBuffer a(8);
  a.fill(1.0);
  double* ptr = a.data();
  AlignedBuffer b(std::move(a));
  EXPECT_EQ(b.data(), ptr);
  EXPECT_EQ(a.data(), nullptr);  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(a.empty());
}

TEST(AlignedBuffer, EmptyBuffer) {
  AlignedBuffer buf;
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(buf.data(), nullptr);
}

TEST(Csv, EscapingRules) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("with,comma"), "\"with,comma\"");
  EXPECT_EQ(CsvWriter::escape("with\"quote"), "\"with\"\"quote\"");
  EXPECT_EQ(CsvWriter::escape("with\nnewline"), "\"with\nnewline\"");
}

TEST(Csv, NumFormattingRoundTrips) {
  EXPECT_EQ(std::stod(CsvWriter::num(0.1)), 0.1);
  EXPECT_EQ(CsvWriter::num(std::uint64_t{42}), "42");
  EXPECT_EQ(CsvWriter::num(-7), "-7");
}

TEST(Csv, WritesFile) {
  const std::string path = ::testing::TempDir() + "/whtlab_csv_test.csv";
  {
    CsvWriter csv(path);
    csv.header({"a", "b"});
    csv.row({"1", "x,y"});
  }
  std::ifstream in(path);
  std::stringstream content;
  content << in.rdbuf();
  EXPECT_EQ(content.str(), "a,b\n1,\"x,y\"\n");
  std::remove(path.c_str());
}

TEST(Csv, ThrowsOnUnwritablePath) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir/x.csv"), std::runtime_error);
}

TEST(Table, RendersAlignedColumns) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22.5"});
  const std::string out = t.render();
  EXPECT_NE(out.find("name   value"), std::string::npos);
  EXPECT_NE(out.find("alpha      1"), std::string::npos);  // numbers right-aligned
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, FmtPrecision) {
  EXPECT_EQ(TextTable::fmt(3.14159, 3), "3.14");
  EXPECT_EQ(TextTable::fmt(1234567.0, 4), "1.235e+06");
}

TEST(Table, ShortRowsPadded) {
  TextTable t({"a", "b", "c"});
  t.add_row({"x"});
  EXPECT_NO_THROW(t.render());
}

TEST(Cli, ParsesFlagsAndPositional) {
  Cli cli;
  cli.add_flag("samples", "sample count", "100");
  cli.add_flag("csv", "csv output dir");
  cli.add_bool("verbose", "chatty");
  const char* argv[] = {"prog", "--samples", "250", "--verbose", "pos1",
                        "--csv=out"};
  ASSERT_TRUE(cli.parse(6, const_cast<char**>(argv)));
  EXPECT_EQ(cli.get_int("samples", 0), 250);
  EXPECT_EQ(cli.get("csv"), "out");
  EXPECT_EQ(cli.get("verbose"), "true");
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "pos1");
}

TEST(Cli, DefaultsApply) {
  Cli cli;
  cli.add_flag("samples", "sample count", "100");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(cli.parse(1, const_cast<char**>(argv)));
  EXPECT_TRUE(cli.has("samples"));
  EXPECT_EQ(cli.get_int("samples", 0), 100);
  EXPECT_EQ(cli.get_double("samples", 0.0), 100.0);
}

TEST(Cli, UnknownFlagFails) {
  Cli cli;
  const char* argv[] = {"prog", "--bogus"};
  EXPECT_FALSE(cli.parse(2, const_cast<char**>(argv)));
}

TEST(Env, IntParsingWithDefault) {
  ::unsetenv("WHTLAB_TEST_ENV");
  EXPECT_EQ(env_int("WHTLAB_TEST_ENV", 7), 7);
  ::setenv("WHTLAB_TEST_ENV", "123", 1);
  EXPECT_EQ(env_int("WHTLAB_TEST_ENV", 7), 123);
  ::setenv("WHTLAB_TEST_ENV", "12x", 1);
  EXPECT_THROW(env_int("WHTLAB_TEST_ENV", 7), std::invalid_argument);
  ::unsetenv("WHTLAB_TEST_ENV");
}

TEST(Env, DoubleParsing) {
  ::setenv("WHTLAB_TEST_ENV_D", "0.25", 1);
  EXPECT_EQ(env_double("WHTLAB_TEST_ENV_D", 1.0), 0.25);
  ::unsetenv("WHTLAB_TEST_ENV_D");
  EXPECT_EQ(env_double("WHTLAB_TEST_ENV_D", 1.0), 1.0);
}

TEST(Env, EmptyTreatedAsUnset) {
  ::setenv("WHTLAB_TEST_ENV_E", "", 1);
  EXPECT_FALSE(env_string("WHTLAB_TEST_ENV_E").has_value());
  ::unsetenv("WHTLAB_TEST_ENV_E");
}

}  // namespace
}  // namespace whtlab::util
