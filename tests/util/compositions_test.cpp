#include "util/compositions.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <set>

namespace whtlab::util {
namespace {

TEST(Compositions, CountAllParts) {
  EXPECT_EQ(composition_count(1), 1u);
  EXPECT_EQ(composition_count(2), 2u);
  EXPECT_EQ(composition_count(5), 16u);
  EXPECT_EQ(composition_count(10), 512u);
}

TEST(Compositions, CountAtLeastTwoParts) {
  EXPECT_EQ(composition_count(1, 2), 0u);
  EXPECT_EQ(composition_count(2, 2), 1u);
  EXPECT_EQ(composition_count(5, 2), 15u);
}

TEST(Compositions, CountAtLeastThreeParts) {
  // Compositions of 5 with >= 3 parts: 16 - 1 (one part) - 4 (two parts) = 11.
  EXPECT_EQ(composition_count(5, 3), 11u);
}

TEST(Compositions, MaskZeroIsSinglePart) {
  EXPECT_EQ(composition_from_mask(7, 0), (std::vector<int>{7}));
}

TEST(Compositions, MaskAllOnesIsAllUnits) {
  EXPECT_EQ(composition_from_mask(4, 0b111), (std::vector<int>{1, 1, 1, 1}));
}

TEST(Compositions, SpecificMask) {
  // n=5, cuts after positions 2 and 3 -> bits 1 and 2 -> mask 0b0110.
  EXPECT_EQ(composition_from_mask(5, 0b0110), (std::vector<int>{2, 1, 2}));
}

TEST(Compositions, MaskRoundTrip) {
  const int n = 7;
  for (std::uint64_t mask = 0; mask < (1ULL << (n - 1)); ++mask) {
    const auto parts = composition_from_mask(n, mask);
    EXPECT_EQ(std::accumulate(parts.begin(), parts.end(), 0), n);
    EXPECT_EQ(composition_to_mask(parts), mask);
  }
}

TEST(Compositions, ForEachVisitsAllExactlyOnce) {
  const int n = 6;
  std::set<std::vector<int>> seen;
  std::uint64_t visits = 0;
  for_each_composition(n, 1, [&](const std::vector<int>& parts) {
    ++visits;
    EXPECT_EQ(std::accumulate(parts.begin(), parts.end(), 0), n);
    EXPECT_TRUE(seen.insert(parts).second) << "duplicate composition";
  });
  EXPECT_EQ(visits, composition_count(n, 1));
}

TEST(Compositions, ForEachRespectsMinParts) {
  std::uint64_t visits = 0;
  for_each_composition(6, 3, [&](const std::vector<int>& parts) {
    EXPECT_GE(parts.size(), 3u);
    ++visits;
  });
  EXPECT_EQ(visits, composition_count(6, 3));
}

TEST(Compositions, BadArgumentsThrow) {
  EXPECT_THROW(composition_count(0), std::invalid_argument);
  EXPECT_THROW(composition_count(64), std::invalid_argument);
  EXPECT_THROW(composition_from_mask(0, 0), std::invalid_argument);
  EXPECT_THROW(composition_from_mask(4, 0b1000), std::invalid_argument);
}

}  // namespace
}  // namespace whtlab::util
