#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace whtlab::util {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, ReseedRestartsStream) {
  Rng a(7);
  const std::uint64_t first = a.next();
  a.next();
  a.reseed(7);
  EXPECT_EQ(a.next(), first);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(3);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.below(bound), bound);
    }
  }
}

TEST(Rng, BelowOneAlwaysZero) {
  Rng rng(4);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng rng(5);
  const std::uint64_t bound = 8;
  std::vector<int> counts(bound, 0);
  const int draws = 80000;
  for (int i = 0; i < draws; ++i) ++counts[rng.below(bound)];
  // Chi-square with 7 dof; 99.9% critical value ~ 24.3.
  double chi2 = 0.0;
  const double expected = static_cast<double>(draws) / static_cast<double>(bound);
  for (int c : counts) {
    const double d = static_cast<double>(c) - expected;
    chi2 += d * d / expected;
  }
  EXPECT_LT(chi2, 24.3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(6);
  double lo = 1.0;
  double hi = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    lo = std::min(lo, u);
    hi = std::max(hi, u);
  }
  EXPECT_LT(lo, 0.01);
  EXPECT_GT(hi, 0.99);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 2.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 2.0);
  }
}

TEST(Rng, NoShortCycles) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    EXPECT_TRUE(seen.insert(rng.next()).second) << "repeat at step " << i;
  }
}

TEST(Splitmix, KnownSequenceIsStable) {
  // Regression anchor: the sampler streams must never silently change.
  std::uint64_t state = 0;
  const std::uint64_t first = splitmix64_next(state);
  const std::uint64_t second = splitmix64_next(state);
  EXPECT_EQ(first, 0xe220a8397b1dcdafULL);
  EXPECT_EQ(second, 0x6e789e6aa1b965f4ULL);
}

}  // namespace
}  // namespace whtlab::util
