// Deterministic fault injection (util/fault.hpp): the spec grammar, every
// trigger kind, the disarmed fast path, and the hit/fire counters the chaos
// tests assert on.  Each test disarms on entry and exit so fault state
// never leaks between tests sharing the process.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "util/fault.hpp"

namespace whtlab::util::fault {
namespace {

class FaultTest : public ::testing::Test {
 protected:
  void SetUp() override { disarm(); }
  void TearDown() override { disarm(); }
};

TEST_F(FaultTest, DisarmedIsInert) {
  EXPECT_FALSE(enabled());
  EXPECT_FALSE(point("ipc.ring.publish"));
  EXPECT_EQ(hits("ipc.ring.publish"), 0u);
  EXPECT_EQ(fired("ipc.ring.publish"), 0u);
}

TEST_F(FaultTest, OnceFiresExactlyOnce) {
  arm("a.b=once");
  EXPECT_TRUE(enabled());
  EXPECT_TRUE(point("a.b"));
  EXPECT_FALSE(point("a.b"));
  EXPECT_FALSE(point("a.b"));
  EXPECT_EQ(hits("a.b"), 3u);
  EXPECT_EQ(fired("a.b"), 1u);
}

TEST_F(FaultTest, AlwaysFiresEveryHit) {
  arm("a.b=always");
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(point("a.b"));
  EXPECT_EQ(fired("a.b"), 5u);
}

TEST_F(FaultTest, NthFiresExactlyTheKthHit) {
  arm("a.b=nth:3");
  EXPECT_FALSE(point("a.b"));
  EXPECT_FALSE(point("a.b"));
  EXPECT_TRUE(point("a.b"));
  EXPECT_FALSE(point("a.b"));
  EXPECT_EQ(fired("a.b"), 1u);
}

TEST_F(FaultTest, EveryFiresPeriodically) {
  arm("a.b=every:2");
  int fired_count = 0;
  for (int i = 0; i < 6; ++i) fired_count += point("a.b") ? 1 : 0;
  EXPECT_EQ(fired_count, 3);  // hits 2, 4, 6
}

TEST_F(FaultTest, ProbabilityEndpointsAreExact) {
  arm("never=prob:0,ever=prob:1");
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(point("never"));
    EXPECT_TRUE(point("ever"));
  }
}

TEST_F(FaultTest, SeededProbabilityIsReproducible) {
  std::string first;
  arm("a.b=prob:0.5:42");
  for (int i = 0; i < 64; ++i) first += point("a.b") ? '1' : '0';
  // Re-arming with the same (P, SEED) must replay the same fire sequence.
  arm("a.b=prob:0.5:42");
  std::string second;
  for (int i = 0; i < 64; ++i) second += point("a.b") ? '1' : '0';
  EXPECT_EQ(first, second);
  EXPECT_NE(first.find('1'), std::string::npos);
  EXPECT_NE(first.find('0'), std::string::npos);
}

TEST_F(FaultTest, UnarmedPointsPassWhileOthersAreArmed) {
  arm("a.b=always");
  EXPECT_FALSE(point("c.d"));
  EXPECT_EQ(hits("c.d"), 0u) << "unarmed points are not tracked";
}

TEST_F(FaultTest, ArmReplacesThePreviousSpec) {
  arm("a.b=always");
  ASSERT_TRUE(point("a.b"));
  arm("c.d=always");
  EXPECT_FALSE(point("a.b"));
  EXPECT_TRUE(point("c.d"));
}

TEST_F(FaultTest, DisarmRestoresTheFastPath) {
  arm("a.b=always");
  ASSERT_TRUE(enabled());
  disarm();
  EXPECT_FALSE(enabled());
  EXPECT_FALSE(point("a.b"));
}

TEST_F(FaultTest, MalformedSpecsThrowLoudly) {
  // A typo in a fault spec must fail the run, not silently test nothing.
  EXPECT_THROW(arm("missing-equals"), std::invalid_argument);
  EXPECT_THROW(arm("a.b=bogus"), std::invalid_argument);
  EXPECT_THROW(arm("a.b=nth:0"), std::invalid_argument);
  EXPECT_THROW(arm("a.b=nth:x"), std::invalid_argument);
  EXPECT_THROW(arm("a.b=every:0"), std::invalid_argument);
  EXPECT_THROW(arm("a.b=prob:1.5"), std::invalid_argument);
  EXPECT_THROW(arm("a.b=prob:-0.1"), std::invalid_argument);
  EXPECT_THROW(arm("a.b=prob:abc"), std::invalid_argument);
  EXPECT_THROW(arm("=once"), std::invalid_argument);
  EXPECT_FALSE(enabled()) << "a failed arm must not leave points armed";
}

TEST_F(FaultTest, MultiPointSpecArmsIndependentTriggers) {
  arm("a.b=once,c.d=nth:2, e.f=always");
  EXPECT_TRUE(point("a.b"));
  EXPECT_FALSE(point("a.b"));
  EXPECT_FALSE(point("c.d"));
  EXPECT_TRUE(point("c.d"));
  EXPECT_TRUE(point("e.f"));
}

}  // namespace
}  // namespace whtlab::util::fault
