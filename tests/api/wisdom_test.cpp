// Wisdom plan cache: file round-trip through the plan grammar, and the
// Planner short-circuit — a second planner process pays zero search cost
// for a tuple the first one already tuned.
#include "api/wisdom.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "api/wht.hpp"
#include "core/plan.hpp"
#include "core/plan_io.hpp"
#include "simd/cpu_features.hpp"

namespace whtlab::api {
namespace {

/// Unique temp path per test; removed on destruction.
class TempFile {
 public:
  explicit TempFile(const std::string& name)
      : path_(::testing::TempDir() + name) {
    std::remove(path_.c_str());
  }
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

TEST(Wisdom, RoundTripsEntriesThroughTheGrammar) {
  const TempFile file("wisdom_roundtrip.txt");
  Wisdom wisdom;
  const Wisdom::Key small{"avx512", 4, "measure", "simd"};
  const Wisdom::Key big{"scalar", 16, "estimate", "fused"};
  wisdom.insert(small, core::Plan::balanced_binary(4, 2));
  wisdom.insert(big, core::Plan::iterative_radix(16, 8));
  wisdom.save(file.path());

  const Wisdom loaded = Wisdom::load(file.path());
  EXPECT_EQ(loaded.size(), 2u);
  ASSERT_NE(loaded.lookup(small), nullptr);
  ASSERT_NE(loaded.lookup(big), nullptr);
  EXPECT_EQ(*loaded.lookup(small), core::Plan::balanced_binary(4, 2));
  EXPECT_EQ(*loaded.lookup(big), core::Plan::iterative_radix(16, 8));
  EXPECT_EQ(loaded.lookup(Wisdom::Key{"avx512", 5, "measure", "simd"}),
            nullptr);
}

TEST(Wisdom, MissingFileIsEmptyAndMalformedThrows) {
  EXPECT_EQ(Wisdom::load("/nonexistent/wisdom.txt").size(), 0u);

  const TempFile file("wisdom_malformed.txt");
  std::ofstream out(file.path());
  out << "# comment survives\n" << "avx2\tnot-enough-fields\n";
  out.close();
  EXPECT_THROW(Wisdom::load(file.path()), std::invalid_argument);
}

TEST(Wisdom, SizeMismatchedEntryThrows) {
  // A row whose grammar computes a different size than its n column is
  // corruption; using it would hand callers a wrong-size Transform.
  const TempFile file("wisdom_mismatch.txt");
  std::ofstream out(file.path());
  out << "avx512\t16\tmeasure\tsimd\tsplit[small[4],small[4]]\n";  // 2^8 plan
  out.close();
  EXPECT_THROW(Wisdom::load(file.path()), std::invalid_argument);
}

TEST(Wisdom, DuplicateKeyLinesLastWins) {
  // Appending a re-tuned line supersedes the older one, matching insert().
  const TempFile file("wisdom_dup.txt");
  std::ofstream out(file.path());
  out << "avx512\t6\tmeasure\tsimd\t" << "split[small[3],small[3]]" << "\n"
      << "avx512\t6\tmeasure\tsimd\t" << "split[small[2],small[4]]" << "\n";
  out.close();
  const Wisdom loaded = Wisdom::load(file.path());
  EXPECT_EQ(loaded.size(), 1u);
  const Wisdom::Key key{"avx512", 6, "measure", "simd"};
  ASSERT_NE(loaded.lookup(key), nullptr);
  EXPECT_EQ(*loaded.lookup(key),
            core::parse_plan("split[small[2],small[4]]"));
}

TEST(Wisdom, InsertReplacesExistingEntry) {
  Wisdom wisdom;
  const Wisdom::Key key{"avx2", 6, "anneal", "generated"};
  wisdom.insert(key, core::Plan::iterative(6));
  wisdom.insert(key, core::Plan::right_recursive(6));
  EXPECT_EQ(wisdom.size(), 1u);
  EXPECT_EQ(*wisdom.lookup(key), core::Plan::right_recursive(6));
}

TEST(PlannerWisdom, SecondPlanComesFromTheCache) {
  const TempFile file("wisdom_planner.txt");

  auto first = Planner().wisdom_file(file.path()).plan(10);
  EXPECT_FALSE(first.planning().from_wisdom);
  EXPECT_GT(first.planning().evaluations, 0u);

  auto second = Planner().wisdom_file(file.path()).plan(10);
  EXPECT_TRUE(second.planning().from_wisdom);
  EXPECT_EQ(second.planning().evaluations, 0u);
  EXPECT_EQ(second.plan(), first.plan());

  // A different tuple (another backend) misses and appends.
  auto other = Planner().wisdom_file(file.path()).backend("simd").plan(10);
  EXPECT_FALSE(other.planning().from_wisdom);
  EXPECT_EQ(Wisdom::load(file.path()).size(), 2u);

  // The file key is the dispatched cpu level.
  const Wisdom loaded = Wisdom::load(file.path());
  const Wisdom::Key key{simd::to_string(simd::active_level()), 10, "estimate",
                        "generated"};
  ASSERT_NE(loaded.lookup(key), nullptr);
  EXPECT_EQ(*loaded.lookup(key), first.plan());
}

TEST(PlannerWisdom, HitViolatingMaxLeafIsAMissAndIsResearched) {
  const TempFile file("wisdom_maxleaf.txt");
  // Seed the cache with a winner using leaf-8 codelets for this exact key.
  Wisdom seed;
  seed.insert(
      Wisdom::Key{simd::to_string(simd::active_level()), 10, "estimate",
                  "generated"},
      core::Plan::iterative_radix(10, 8));
  seed.save(file.path());

  // A planner capping leaves below the cached winner must not use it.
  auto capped = Planner().wisdom_file(file.path()).max_leaf(3).plan(10);
  EXPECT_FALSE(capped.planning().from_wisdom);
  EXPECT_LE(capped.plan().max_leaf_log2(), 3);

  // The re-search overwrote the entry; the capped plan is now the cache.
  auto replay = Planner().wisdom_file(file.path()).max_leaf(3).plan(10);
  EXPECT_TRUE(replay.planning().from_wisdom);
  EXPECT_EQ(replay.plan(), capped.plan());
}

TEST(Wisdom, PropertiesRoundTripAndMerge) {
  const TempFile file("wisdom_props.txt");
  Wisdom wisdom;
  wisdom.set_property("calibration/avx512/fused", "1 0.25 1 8");
  wisdom.set_property("empty-value", "");  // legal, must round-trip
  wisdom.insert(Wisdom::Key{"avx512", 6, "estimate", "fused"},
                core::Plan::iterative(6));
  wisdom.save(file.path());

  const Wisdom loaded = Wisdom::load(file.path());
  ASSERT_TRUE(loaded.property("calibration/avx512/fused").has_value());
  EXPECT_EQ(*loaded.property("calibration/avx512/fused"), "1 0.25 1 8");
  ASSERT_TRUE(loaded.property("empty-value").has_value());
  EXPECT_EQ(*loaded.property("empty-value"), "");
  EXPECT_FALSE(loaded.property("missing").has_value());

  Wisdom other;
  other.set_property("calibration/avx512/fused", "2 2 2 2");
  other.insert(Wisdom::Key{"avx512", 7, "estimate", "fused"},
               core::Plan::iterative(7));
  Wisdom merged = loaded;
  merged.merge_from(other);
  EXPECT_EQ(merged.size(), 2u);  // union of entries
  EXPECT_EQ(*merged.property("calibration/avx512/fused"), "2 2 2 2");
}

TEST(Wisdom, SaveIsAtomicReplacement) {
  // save() must go through a temp file + rename: after it returns there is
  // no temp residue, and an existing file was replaced whole (a reader can
  // never observe the header without the entries).
  const TempFile file("wisdom_atomic.txt");
  Wisdom first;
  first.insert(Wisdom::Key{"scalar", 5, "estimate", "generated"},
               core::Plan::iterative(5));
  first.save(file.path());
  Wisdom second;
  second.insert(Wisdom::Key{"scalar", 6, "estimate", "generated"},
                core::Plan::iterative(6));
  second.save(file.path());

  const Wisdom loaded = Wisdom::load(file.path());
  EXPECT_EQ(loaded.size(), 1u);  // replaced, not appended
  std::ifstream temp(file.path() + ".tmp." + std::to_string(::getpid()));
  EXPECT_FALSE(temp.good()) << "temp file left behind";
}

TEST(WisdomRegistry, ConcurrentWritersLoseNothing) {
  // The failure mode this closes: two planners load the same file, each
  // inserts its own winner, each rewrites the whole file — last writer
  // silently drops the other's entry.  Through the registry every insert
  // re-merges the shared state under one lock, so all winners survive any
  // interleaving.
  const TempFile file("wisdom_concurrent.txt");
  WisdomRegistry::global().invalidate(file.path());
  constexpr int kWriters = 8;
  constexpr int kEntriesPerWriter = 4;
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&file, w]() {
      for (int i = 0; i < kEntriesPerWriter; ++i) {
        const int n = 4 + (w * kEntriesPerWriter + i) % 12;
        WisdomRegistry::global().insert(
            file.path(),
            Wisdom::Key{"avx512", n, "measure",
                        "writer" + std::to_string(w) + "_" + std::to_string(i)},
            core::Plan::iterative(n));
      }
    });
  }
  for (auto& thread : writers) thread.join();

  const Wisdom loaded = Wisdom::load(file.path());
  EXPECT_EQ(loaded.size(),
            static_cast<std::size_t>(kWriters * kEntriesPerWriter));
}

TEST(WisdomRegistry, ConcurrentPlannersShareOneFile) {
  // End to end through the Planner: concurrent plan() calls against one
  // wisdom file must each persist their tuple.
  const TempFile file("wisdom_planner_concurrent.txt");
  WisdomRegistry::global().invalidate(file.path());
  const std::vector<int> sizes{6, 7, 8, 9};
  std::vector<std::thread> planners;
  for (const int n : sizes) {
    planners.emplace_back([&file, n]() {
      Planner().wisdom_file(file.path()).plan(n);
    });
  }
  for (auto& thread : planners) thread.join();

  const Wisdom loaded = Wisdom::load(file.path());
  EXPECT_EQ(loaded.size(), sizes.size());
  for (const int n : sizes) {
    EXPECT_NE(loaded.lookup(Wisdom::Key{simd::to_string(simd::active_level()),
                                        n, "estimate", "generated"}),
              nullptr);
  }
}

TEST(WisdomRegistry, ReloadsWhenTheFileChangesUnderneath) {
  // External rewrites (another process, a test fixture) must be visible:
  // the registry fingerprints the file and reloads on change.
  const TempFile file("wisdom_reload.txt");
  WisdomRegistry::global().invalidate(file.path());
  const Wisdom::Key key{"avx512", 6, "measure", "simd"};
  EXPECT_FALSE(WisdomRegistry::global().lookup(file.path(), key).has_value());

  Wisdom external;
  external.insert(key, core::Plan::iterative(6));
  external.save(file.path());
  const auto hit = WisdomRegistry::global().lookup(file.path(), key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, core::Plan::iterative(6));
}

TEST(PlannerWisdom, FixedStrategyBypassesTheCache) {
  const TempFile file("wisdom_fixed.txt");
  auto t = Planner()
               .wisdom_file(file.path())
               .fixed(core::Plan::balanced_binary(8, 4))
               .plan();
  EXPECT_FALSE(t.planning().from_wisdom);
  EXPECT_EQ(Wisdom::load(file.path()).size(), 0u);
}

}  // namespace
}  // namespace whtlab::api
