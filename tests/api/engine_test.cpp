// wht::Engine: shared plan cache, serve-time backend arbitration by request
// shape, the coalescing submit batcher, and thread-safety of the whole
// serving surface (runs under the TSan CI job).
#include "api/engine.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <future>
#include <stdexcept>
#include <thread>
#include <vector>

#include "api/executor_backend.hpp"
#include "core/executor.hpp"
#include "core/plan.hpp"
#include "util/rng.hpp"

namespace whtlab::api {
namespace {

using util::random_vector;

/// Correct executor with a scripted cost shape, so arbitration decisions
/// are deterministic regardless of host ISA and measurement noise.
class ScriptedBackend final : public ExecutorBackend {
 public:
  ScriptedBackend(std::string name, double unit_cost, double batched_factor)
      : name_(std::move(name)),
        unit_cost_(unit_cost),
        batched_factor_(batched_factor) {}

  const std::string& name() const override { return name_; }

  void run(const core::Plan& plan, double* x, std::ptrdiff_t stride,
           ExecContext& /*ctx*/) const override {
    core::execute_node(plan.root(), x, stride,
                       core::codelet_table(core::CodeletBackend::kGenerated));
  }

  std::function<double(const core::Plan&)> cost_model() const override {
    const double cost = unit_cost_;
    return [cost](const core::Plan&) { return cost; };
  }

  double batch_factor(const core::Plan& /*plan*/, std::size_t count,
                      int /*threads*/) const override {
    return count >= 4 ? batched_factor_ : 1.0;
  }

 private:
  std::string name_;
  double unit_cost_;
  double batched_factor_;
};

/// Two candidates with crossing cost curves: "scripted-single" wins lone
/// vectors, "scripted-batch" wins once four or more coalesce.
void ensure_scripted_backends() {
  auto& registry = BackendRegistry::global();
  if (registry.contains("scripted-single")) return;
  registry.register_factory("scripted-single", [](const BackendOptions&) {
    return std::make_unique<ScriptedBackend>("scripted-single", 100.0, 1.0);
  });
  registry.register_factory("scripted-batch", [](const BackendOptions&) {
    return std::make_unique<ScriptedBackend>("scripted-batch", 1000.0, 0.01);
  });
}

EngineOptions scripted_options() {
  ensure_scripted_backends();
  EngineOptions options;
  options.backends = {"scripted-single", "scripted-batch"};
  options.measure_costs = false;  // compare the scripted models verbatim
  return options;
}

TEST(EngineArbitration, BrokenCandidateIsSkippedNotFatal) {
  ensure_scripted_backends();
  auto& registry = BackendRegistry::global();
  if (!registry.contains("scripted-broken")) {
    registry.register_factory(
        "scripted-broken", [](const BackendOptions&) -> std::unique_ptr<ExecutorBackend> {
          throw std::runtime_error("backend hardware went away");
        });
  }
  EngineOptions options;
  options.backends = {"scripted-single", "scripted-broken"};
  options.measure_costs = false;
  Engine engine(options);

  // The healthy candidate serves; the broken one is absent from the
  // ranking instead of poisoning the whole size.
  const auto decision = engine.arbitrate(8, 1);
  EXPECT_EQ(decision.backend, "scripted-single");
  EXPECT_EQ(decision.candidates.size(), 1u);
  auto x = random_vector(1u << 8, 7);
  engine.execute(8, x.data());  // must not throw
}

TEST(EngineArbitration, PicksDifferentBackendsForDifferentShapes) {
  Engine engine(scripted_options());

  const auto single = engine.arbitrate(8, 1);
  EXPECT_EQ(single.backend, "scripted-single");
  EXPECT_DOUBLE_EQ(single.cost, 100.0);

  const auto batch = engine.arbitrate(8, 8);
  EXPECT_EQ(batch.backend, "scripted-batch");
  EXPECT_DOUBLE_EQ(batch.cost, 1000.0 * 8 * 0.01);

  // Both candidates are priced and ranked cheapest-first.
  ASSERT_EQ(batch.candidates.size(), 2u);
  EXPECT_EQ(batch.candidates[0].backend, batch.backend);
  EXPECT_LE(batch.candidates[0].cost, batch.candidates[1].cost);
}

TEST(EngineArbitration, RoutingFollowsTheDecision) {
  Engine engine(scripted_options());
  const std::uint64_t n = 1u << 8;
  auto single = random_vector(n, 1);
  engine.execute(8, single.data());
  auto batch = random_vector(n * 8, 2);
  engine.execute_many(8, batch.data(), 8);

  const auto stats = engine.stats();
  EXPECT_EQ(stats.per_backend.at("scripted-single"), 1u);
  EXPECT_EQ(stats.per_backend.at("scripted-batch"), 8u);
  EXPECT_EQ(stats.vectors, 9u);
  EXPECT_EQ(stats.singles, 1u);
  EXPECT_EQ(stats.batches, 1u);
}

TEST(EngineArbitration, RealBackendsPriceEveryCandidate) {
  // With measured anchors the units are cycles for every candidate; the
  // winner must be the cheapest and all costs finite and positive.
  EngineOptions options;
  options.backends = {"generated", "simd", "fused"};
  Engine engine(options);
  for (const auto& [n, count] : {std::pair<int, std::size_t>{6, 16},
                                 std::pair<int, std::size_t>{12, 1}}) {
    const auto decision = engine.arbitrate(n, count);
    ASSERT_EQ(decision.candidates.size(), 3u) << n;
    EXPECT_EQ(decision.backend, decision.candidates[0].backend);
    for (const auto& candidate : decision.candidates) {
      EXPECT_GT(candidate.cost, 0.0) << candidate.backend;
      EXPECT_LE(decision.candidates[0].cost, candidate.cost);
    }
  }
}

TEST(Engine, ExecuteMatchesSharedTransformSerial) {
  EngineOptions options;
  options.backends = {"generated"};
  options.measure_costs = false;
  Engine engine(options);

  const auto transform = engine.transform(10, "generated");
  const auto input = random_vector(transform->size(), 3);
  auto reference = input;
  transform->execute(reference.data());

  auto served = input;
  engine.execute(10, served.data());
  EXPECT_EQ(served, reference);

  // The plan cache hands back the same shared instance.
  EXPECT_EQ(engine.transform(10, "generated").get(), transform.get());
}

TEST(Engine, CoalescesConcurrentSubmitsIntoOneBatch) {
  EngineOptions options;
  options.backends = {"generated"};
  options.measure_costs = false;
  options.max_batch = 8;
  options.batch_window_us = 300000;  // plenty: the batch must fill, not time out
  Engine engine(options);

  constexpr int kN = 6;
  const std::uint64_t size = 1u << kN;
  const auto input = random_vector(size, 4);
  auto reference = input;
  engine.transform(kN, "generated")->execute(reference.data());

  std::vector<std::vector<double>> buffers(8, input);
  std::vector<std::future<void>> futures;
  for (auto& buffer : buffers) futures.push_back(engine.submit(kN, buffer.data()));
  for (auto& future : futures) future.get();

  for (const auto& buffer : buffers) EXPECT_EQ(buffer, reference);
  const auto stats = engine.stats();
  EXPECT_EQ(stats.submitted, 8u);
  EXPECT_EQ(stats.batches, 1u);   // ONE run_many served all eight
  EXPECT_EQ(stats.coalesced, 8u);
}

TEST(Engine, SubmitErrorsSurfaceThroughTheFuture) {
  EngineOptions options;
  options.backends = {"generated"};
  options.measure_costs = false;
  options.batch_window_us = 0;
  Engine engine(options);
  double dummy = 0.0;
  auto future = engine.submit(30, &dummy);  // planner rejects n > 26
  EXPECT_THROW(future.get(), std::invalid_argument);
  EXPECT_THROW(engine.submit(0, &dummy), std::invalid_argument);
}

TEST(Engine, RejectsUnknownCandidates) {
  EngineOptions options;
  options.backends = {"no-such-backend"};
  EXPECT_THROW(Engine{options}, std::invalid_argument);
}

TEST(Engine, ConcurrentMixedServingIsCorrect) {
  EngineOptions options;
  options.backends = {"generated", "simd"};
  options.measure_costs = false;
  options.batch_window_us = 100;
  Engine engine(options);

  constexpr int kN = 9;
  const std::uint64_t size = 1u << kN;
  const auto input = random_vector(size, 5);
  auto reference = input;
  engine.transform(kN, engine.arbitrate(kN, 1).backend)->execute(reference.data());

  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < 8; ++t) {
    clients.emplace_back([&, t]() {
      std::vector<double> work(size);
      for (int i = 0; i < 5; ++i) {
        work = input;
        if ((t + i) % 2 == 0) {
          engine.execute(kN, work.data());
        } else {
          engine.submit(kN, work.data()).get();
        }
        if (work != reference) mismatches.fetch_add(1);
      }
    });
  }
  for (auto& client : clients) client.join();
  EXPECT_EQ(mismatches.load(), 0);
  const auto stats = engine.stats();
  EXPECT_EQ(stats.vectors, 8u * 5u);
}

}  // namespace
}  // namespace whtlab::api
