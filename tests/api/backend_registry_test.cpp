// BackendRegistry: built-in lookup, unknown-name errors, custom registration,
// and numerical agreement of every built-in backend with core::execute.
#include "api/executor_backend.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "core/executor.hpp"
#include "core/instrumented.hpp"
#include "core/plan.hpp"
#include "util/aligned_buffer.hpp"
#include "util/rng.hpp"

namespace whtlab::api {
namespace {

TEST(BackendRegistry, BuiltinsAreRegistered) {
  auto& registry = BackendRegistry::global();
  for (const char* name :
       {"generated", "template", "instrumented", "parallel", "simd"}) {
    EXPECT_TRUE(registry.contains(name)) << name;
    const auto backend = registry.create(name);
    ASSERT_NE(backend, nullptr) << name;
    EXPECT_EQ(backend->name(), name);
  }
}

TEST(BackendRegistry, NamesAreSortedAndContainBuiltins) {
  const auto names = BackendRegistry::global().names();
  ASSERT_GE(names.size(), 5u);
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(BackendRegistry, UnknownNameThrowsListingKnownNames) {
  try {
    BackendRegistry::global().create("definitely-not-a-backend");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("definitely-not-a-backend"), std::string::npos);
    EXPECT_NE(message.find("generated"), std::string::npos);
    EXPECT_NE(message.find("parallel"), std::string::npos);
  }
}

TEST(BackendRegistry, DuplicateRegistrationThrows) {
  EXPECT_THROW(BackendRegistry::global().register_factory(
                   "generated",
                   [](const BackendOptions&) {
                     return BackendRegistry::global().create("template");
                   }),
               std::invalid_argument);
}

TEST(BackendRegistry, CustomBackendIsCreatable) {
  // A future SIMD/GPU backend drops in exactly like this.
  class NegatingBackend final : public ExecutorBackend {
   public:
    const std::string& name() const override { return name_; }
    void run(const core::Plan& plan, double* x, std::ptrdiff_t stride,
             ExecContext& /*ctx*/) const override {
      core::execute_node(plan.root(), x, stride,
                         core::codelet_table(core::CodeletBackend::kGenerated));
      for (std::uint64_t i = 0; i < plan.size(); ++i) {
        x[static_cast<std::ptrdiff_t>(i) * stride] *= -1.0;
      }
    }

   private:
    std::string name_ = "negating-test";
  };

  auto& registry = BackendRegistry::global();
  if (!registry.contains("negating-test")) {
    registry.register_factory("negating-test", [](const BackendOptions&) {
      return std::make_unique<NegatingBackend>();
    });
  }
  const auto backend = registry.create("negating-test");
  const core::Plan plan = core::Plan::iterative(4);
  util::AlignedBuffer x(plan.size());
  util::AlignedBuffer reference(plan.size());
  util::Rng rng(11);
  for (std::uint64_t i = 0; i < plan.size(); ++i) {
    x[i] = reference[i] = rng.uniform(-1, 1);
  }
  backend->run(plan, x.data(), 1);
  core::execute(plan, reference.data());
  for (std::uint64_t i = 0; i < plan.size(); ++i) {
    EXPECT_EQ(x[i], -reference[i]) << i;
  }
}

class BuiltinBackendTest : public ::testing::TestWithParam<const char*> {};

TEST_P(BuiltinBackendTest, MatchesCoreExecute) {
  BackendOptions options;
  options.threads = 2;
  const auto backend = BackendRegistry::global().create(GetParam(), options);
  const core::Plan plan = core::Plan::balanced_binary(12, 4);
  util::AlignedBuffer x(plan.size());
  util::AlignedBuffer reference(plan.size());
  util::Rng rng(5);
  for (std::uint64_t i = 0; i < plan.size(); ++i) {
    x[i] = reference[i] = rng.uniform(-1, 1);
  }
  backend->run(plan, x.data(), 1);
  core::execute(plan, reference.data());
  for (std::uint64_t i = 0; i < plan.size(); ++i) {
    EXPECT_EQ(x[i], reference[i]) << GetParam() << " at " << i;
  }
}

TEST_P(BuiltinBackendTest, StridedRunMatchesGather) {
  const auto backend = BackendRegistry::global().create(GetParam());
  const core::Plan plan = core::Plan::balanced_binary(8, 3);
  const std::uint64_t n = plan.size();
  constexpr std::ptrdiff_t kStride = 3;
  util::AlignedBuffer strided(n * kStride);
  util::AlignedBuffer dense(n);
  util::Rng rng(17);
  strided.fill(-7.0);  // sentinels between the strided elements
  for (std::uint64_t i = 0; i < n; ++i) {
    const double v = rng.uniform(-1, 1);
    strided[i * kStride] = v;
    dense[i] = v;
  }
  backend->run(plan, strided.data(), kStride);
  core::execute(plan, dense.data());
  for (std::uint64_t i = 0; i < n; ++i) {
    EXPECT_DOUBLE_EQ(strided[i * kStride], dense[i]) << GetParam() << " at " << i;
  }
  // Elements between the strided slots are untouched.
  for (std::uint64_t i = 0; i + 1 < n; ++i) {
    for (std::ptrdiff_t off = 1; off < kStride; ++off) {
      EXPECT_EQ(strided[i * kStride + static_cast<std::uint64_t>(off)], -7.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllBuiltins, BuiltinBackendTest,
                         ::testing::Values("generated", "template",
                                           "instrumented", "parallel", "simd"));

TEST(BackendRunMany, DefaultLoopAndOverridesAgree) {
  // Every built-in's batch path must equal per-vector runs of "generated" —
  // including the overriding backends ("simd" interleaved, "parallel"
  // across-vector fork-join).
  const core::Plan plan = core::Plan::balanced_binary(10, 4);
  const std::size_t count = 6;
  const std::ptrdiff_t dist = static_cast<std::ptrdiff_t>(plan.size()) + 3;
  std::vector<double> master(count * static_cast<std::size_t>(dist));
  util::Rng rng(31);
  for (auto& v : master) v = rng.uniform(-1, 1);

  std::vector<double> reference = master;
  for (std::size_t v = 0; v < count; ++v) {
    core::execute(plan, reference.data() + v * static_cast<std::size_t>(dist));
  }

  BackendOptions options;
  options.threads = 3;
  for (const char* name :
       {"generated", "template", "instrumented", "parallel", "simd"}) {
    auto backend = BackendRegistry::global().create(name, options);
    std::vector<double> batch = master;
    backend->run_many(plan, batch.data(), count, dist);
    EXPECT_EQ(batch, reference) << name;
  }
}

TEST(ParallelBackend, StridedForkJoinMatchesDense) {
  // Large enough (>= 2^12) and threaded, so the fork-join branches of
  // execute_parallel_strided run — not the sequential early-return.
  BackendOptions options;
  options.threads = 3;
  const auto backend = BackendRegistry::global().create("parallel", options);
  const core::Plan plan = core::Plan::balanced_binary(13, 5);
  const std::uint64_t n = plan.size();
  constexpr std::ptrdiff_t kStride = 2;
  util::AlignedBuffer strided(n * kStride);
  util::AlignedBuffer dense(n);
  util::Rng rng(23);
  strided.fill(-3.0);
  for (std::uint64_t i = 0; i < n; ++i) {
    const double v = rng.uniform(-1, 1);
    strided[i * kStride] = v;
    dense[i] = v;
  }
  backend->run(plan, strided.data(), kStride);
  core::execute(plan, dense.data());
  for (std::uint64_t i = 0; i < n; ++i) {
    ASSERT_EQ(strided[i * kStride], dense[i]) << i;
  }
  for (std::uint64_t i = 0; i + 1 < n; ++i) {
    ASSERT_EQ(strided[i * kStride + 1], -3.0) << i;  // gaps untouched
  }
}

TEST(InstrumentedBackend, OpCountsLandInTheContext) {
  const auto backend = BackendRegistry::global().create("instrumented");
  const core::Plan plan = core::Plan::right_recursive(9);
  util::AlignedBuffer x(plan.size());
  x.fill(1.0);
  ExecContext ctx;
  EXPECT_EQ(ctx.last_op_counts(), nullptr);  // nothing ran here yet
  backend->run(plan, x.data(), 1, ctx);
  const core::OpCounts* counts = ctx.last_op_counts();
  ASSERT_NE(counts, nullptr);
  EXPECT_EQ(*counts, core::count_ops(plan));
}

TEST(SequentialBackend, DoesNotInstrument) {
  const auto backend = BackendRegistry::global().create("generated");
  const core::Plan plan = core::Plan::small(4);
  util::AlignedBuffer x(plan.size());
  x.fill(1.0);
  ExecContext ctx;
  backend->run(plan, x.data(), 1, ctx);
  EXPECT_EQ(ctx.last_op_counts(), nullptr);
}

}  // namespace
}  // namespace whtlab::api
