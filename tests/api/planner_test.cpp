// wht::Planner: strategy -> search-module mapping, backend selection rules,
// option validation, and determinism of the model-driven strategies.
#include "api/planner.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <stdexcept>
#include <string>

#include "api/wisdom.hpp"
#include "core/verify.hpp"
#include "model/blocked_cost.hpp"
#include "model/combined_model.hpp"
#include "search/dp_search.hpp"
#include "search/exhaustive.hpp"
#include "search/local_search.hpp"
#include "simd/cpu_features.hpp"

namespace whtlab::api {
namespace {

TEST(Planner, DefaultStrategyIsEstimate) {
  auto t = Planner().plan(8);
  EXPECT_EQ(t.planning().strategy, Strategy::kEstimate);
  EXPECT_GT(t.planning().evaluations, 0u);
  EXPECT_GT(t.planning().cost, 0.0);
  EXPECT_EQ(t.log2_size(), 8);
  EXPECT_LT(core::verify_plan(t.plan()), 1e-10);
}

TEST(Planner, EstimateAgreesWithDirectDpSearch) {
  // The façade must pick exactly what dp_search over the combined model
  // picks (same options: max_parts auto = 4).
  const int n = 9;
  auto t = Planner().strategy(Strategy::kEstimate).plan(n);
  search::DpOptions options;
  options.max_parts = 4;
  const model::CombinedModel model;
  const auto direct = search::dp_search(
      n, [&model](const core::Plan& p) { return model(p); }, options);
  EXPECT_EQ(t.plan(), direct.plan);
  EXPECT_DOUBLE_EQ(t.planning().cost, direct.cost);
  EXPECT_EQ(t.planning().evaluations, direct.evaluations);
}

TEST(Planner, EstimateIsDeterministic) {
  auto a = Planner().plan(10);
  auto b = Planner().plan(10);
  EXPECT_EQ(a.plan(), b.plan());
}

TEST(Planner, DpStrategiesExposeWinnersBySize) {
  // The DP winners-by-size table (the old examples/autotune output) rides
  // on PlanningInfo: entry m is the best plan of size 2^m under the same
  // cost, and the top entry is the chosen plan.
  const int n = 9;
  auto t = Planner().strategy(Strategy::kEstimate).plan(n);
  const auto& info = t.planning();
  ASSERT_EQ(info.best_by_size.size(), static_cast<std::size_t>(n) + 1);
  ASSERT_EQ(info.cost_by_size.size(), static_cast<std::size_t>(n) + 1);
  EXPECT_EQ(info.best_by_size[static_cast<std::size_t>(n)], t.plan());
  EXPECT_DOUBLE_EQ(info.cost_by_size[static_cast<std::size_t>(n)], info.cost);
  const model::CombinedModel model;
  for (int m = 1; m <= n; ++m) {
    const auto& best = info.best_by_size[static_cast<std::size_t>(m)];
    ASSERT_TRUE(best.valid()) << m;
    EXPECT_EQ(best.log2_size(), m);
    EXPECT_DOUBLE_EQ(model(best), info.cost_by_size[static_cast<std::size_t>(m)]);
  }
  // Non-DP strategies leave the table empty.
  EXPECT_TRUE(Planner().fixed(core::Plan::small(4)).plan().planning()
                  .best_by_size.empty());
}

TEST(Planner, AnnealStrategyIsReachableAndSeedDeterministic) {
  search::AnnealOptions schedule;
  schedule.iterations = 120;
  auto a = Planner().strategy(Strategy::kAnneal).anneal_options(schedule)
               .seed(5).plan(10);
  auto b = Planner().strategy(Strategy::kAnneal).anneal_options(schedule)
               .seed(5).plan(10);
  EXPECT_EQ(a.planning().strategy, Strategy::kAnneal);
  EXPECT_GT(a.planning().evaluations, 0u);
  EXPECT_GT(a.planning().cost, 0.0);
  EXPECT_EQ(a.plan(), b.plan());  // same seed, same schedule -> same walk
  EXPECT_EQ(a.log2_size(), 10);
  EXPECT_LT(core::verify_plan(a.plan()), 1e-10);
}

TEST(Planner, AnnealRespectsMaxLeaf) {
  search::AnnealOptions schedule;
  schedule.iterations = 80;
  auto t = Planner().strategy(Strategy::kAnneal).anneal_options(schedule)
               .max_leaf(3).plan(9);
  EXPECT_LE(t.plan().max_leaf_log2(), 3);
}

TEST(Planner, AnnealOptionValidation) {
  search::AnnealOptions bad;
  bad.iterations = 0;
  EXPECT_THROW(Planner().anneal_options(bad), std::invalid_argument);
}

TEST(Planner, MeasureStrategyProducesValidPlan) {
  perf::MeasureOptions cheap;
  cheap.repetitions = 1;
  cheap.warmup = 0;
  cheap.inner_loop = 1;
  auto t = Planner()
               .strategy(Strategy::kMeasure)
               .measure_options(cheap)
               .plan(6);
  EXPECT_EQ(t.planning().strategy, Strategy::kMeasure);
  EXPECT_GT(t.planning().evaluations, 0u);
  EXPECT_EQ(t.log2_size(), 6);
  EXPECT_LT(core::verify_plan(t.plan()), 1e-10);
}

TEST(Planner, ExhaustiveStrategyMatchesSpaceSize) {
  perf::MeasureOptions cheap;
  cheap.repetitions = 1;
  cheap.warmup = 0;
  cheap.inner_loop = 1;
  auto t = Planner()
               .strategy(Strategy::kExhaustive)
               .measure_options(cheap)
               .max_leaf(3)
               .plan(4);
  // Evaluation count = full space size for this (n, max_leaf).
  const auto direct = search::exhaustive_search(
      4, [](const core::Plan&) { return 1.0; }, /*max_leaf=*/3);
  EXPECT_EQ(t.planning().evaluations, direct.evaluated);
  EXPECT_LT(core::verify_plan(t.plan()), 1e-10);
}

TEST(Planner, ExhaustiveRefusesLargeSizes) {
  EXPECT_THROW(Planner().strategy(Strategy::kExhaustive).plan(12),
               std::invalid_argument);
}

TEST(Planner, SampledStrategyIsSeedDeterministic) {
  perf::MeasureOptions cheap;
  cheap.repetitions = 1;
  cheap.warmup = 0;
  cheap.inner_loop = 1;
  Planner planner;
  planner.strategy(Strategy::kSampled)
      .samples(30)
      .keep_fraction(0.2)
      .seed(77)
      .measure_options(cheap);
  auto a = planner.plan(8);
  auto b = planner.plan(8);
  // Same seed -> same candidate set -> same measured subset; cycles differ,
  // but both picks come from the same 6 measured plans.
  EXPECT_EQ(a.planning().evaluations, 6u);
  EXPECT_EQ(b.planning().evaluations, 6u);
  EXPECT_LT(core::verify_plan(a.plan()), 1e-10);
}

TEST(Planner, FixedStrategyUsesPlanVerbatim) {
  const core::Plan plan = core::Plan::right_recursive(7);
  auto t = Planner().fixed(plan).plan();
  EXPECT_EQ(t.planning().strategy, Strategy::kFixed);
  EXPECT_EQ(t.planning().evaluations, 0u);
  EXPECT_EQ(t.plan(), plan);
}

TEST(Planner, FixedFromGrammarString) {
  auto t = Planner().fixed("split[small[4],small[4]]").plan(8);
  EXPECT_EQ(t.plan().to_string(), "split[small[4],small[4]]");
}

TEST(Planner, FixedSizeMismatchThrows) {
  EXPECT_THROW(Planner().fixed(core::Plan::small(4)).plan(5),
               std::invalid_argument);
}

TEST(Planner, FixedRejectsEmptyPlanAndBadGrammar) {
  EXPECT_THROW(Planner().fixed(core::Plan()), std::invalid_argument);
  EXPECT_THROW(Planner().fixed("split[small[4]"), std::invalid_argument);
}

TEST(Planner, PlanWithoutSizeRequiresFixed) {
  EXPECT_THROW(Planner().plan(), std::invalid_argument);
}

TEST(Planner, BackendDefaultsFollowThreads) {
  EXPECT_EQ(Planner().plan(4).backend_name(), "generated");
  EXPECT_EQ(Planner().threads(4).plan(4).backend_name(), "parallel");
  // An explicit backend wins over the threads heuristic.
  EXPECT_EQ(Planner().threads(4).backend("template").plan(4).backend_name(),
            "template");
}

TEST(Planner, UnknownBackendThrows) {
  EXPECT_THROW(Planner().backend("gpu-someday").plan(4), std::invalid_argument);
}

TEST(Planner, OptionValidation) {
  EXPECT_THROW(Planner().threads(0), std::invalid_argument);
  EXPECT_THROW(Planner().max_leaf(0), std::invalid_argument);
  EXPECT_THROW(Planner().max_leaf(core::kMaxUnrolled + 1), std::invalid_argument);
  EXPECT_THROW(Planner().max_parts(-2), std::invalid_argument);
  EXPECT_THROW(Planner().samples(0), std::invalid_argument);
  EXPECT_THROW(Planner().keep_fraction(0.0), std::invalid_argument);
  EXPECT_THROW(Planner().keep_fraction(1.5), std::invalid_argument);
  EXPECT_THROW(Planner().plan(0), std::invalid_argument);
  EXPECT_THROW(Planner().plan(27), std::invalid_argument);
}

TEST(Planner, MaxLeafIsRespected) {
  auto t = Planner().strategy(Strategy::kEstimate).max_leaf(2).plan(9);
  EXPECT_LE(t.plan().max_leaf_log2(), 2);
}

TEST(Planner, AnnealMeasuredUsesLiveCyclesForAcceptance) {
  // anneal_measured(true): the model screens proposals, measured cycles
  // through the chosen backend decide — evaluations must count both.
  search::AnnealOptions anneal;
  anneal.iterations = 25;
  perf::MeasureOptions measure;
  measure.warmup = 0;
  measure.repetitions = 1;
  measure.inner_loop = 1;
  auto t = Planner()
               .strategy(Strategy::kAnneal)
               .anneal_options(anneal)
               .anneal_measured(true)
               .measure_options(measure)
               .seed(11)
               .plan(6);
  EXPECT_EQ(t.log2_size(), 6);
  EXPECT_LT(core::verify_plan(t.plan()), 1e-10);
  EXPECT_GT(t.planning().cost, 0.0) << "best_cost is measured cycles";
  EXPECT_GT(t.planning().evaluations, 0u)
      << "evaluations counts model pricings plus measurements";
}

TEST(Strategy, ToStringCoversAllValues) {
  EXPECT_STREQ(to_string(Strategy::kEstimate), "estimate");
  EXPECT_STREQ(to_string(Strategy::kMeasure), "measure");
  EXPECT_STREQ(to_string(Strategy::kExhaustive), "exhaustive");
  EXPECT_STREQ(to_string(Strategy::kSampled), "sampled");
  EXPECT_STREQ(to_string(Strategy::kAnneal), "anneal");
  EXPECT_STREQ(to_string(Strategy::kFixed), "fixed");
}

TEST(Planner, CalibrationPersistsThroughWisdomAndIsReused) {
  // calibrate(true) + wisdom: the first plan() measures the fused model's
  // probe sizes once and stores the fit as a wisdom property; a second
  // planner applies the stored fit without re-measuring.
  const std::string path = ::testing::TempDir() + "planner_calibration.txt";
  std::remove(path.c_str());
  WisdomRegistry::global().invalidate(path);

  perf::MeasureOptions cheap;
  cheap.warmup = 0;
  cheap.repetitions = 1;
  auto first = Planner()
                   .backend("fused")
                   .wisdom_file(path)
                   .calibrate(true)
                   .measure_options(cheap)
                   .plan(12);
  EXPECT_TRUE(first.planning().calibrated);
  const auto property = WisdomRegistry::global().property(
      path, "calibration/" +
                std::string(simd::to_string(simd::active_level())) + "/fused");
  ASSERT_TRUE(property.has_value());
  EXPECT_TRUE(model::BlockedCalibration::parse(*property).has_value());

  // Different n so the plan itself is a wisdom miss, but the calibration
  // property hits — applied, not re-measured.
  auto second = Planner()
                    .backend("fused")
                    .wisdom_file(path)
                    .calibrate(true)
                    .measure_options(cheap)
                    .plan(11);
  EXPECT_TRUE(second.planning().calibrated);

  // Backends without a calibratable cost model are unaffected.
  auto scalar = Planner()
                    .wisdom_file(path)
                    .calibrate(true)
                    .measure_options(cheap)
                    .plan(9);
  EXPECT_FALSE(scalar.planning().calibrated);
  std::remove(path.c_str());
}

TEST(Planner, EstimateReportsCostCacheHits) {
  // The per-planner CostCache must actually absorb re-pricing during the
  // model-driven searches (subtree memo under the combined model).
  auto t = Planner().strategy(Strategy::kEstimate).plan(16);
  EXPECT_GT(t.planning().cache_hits, 0u);
}

TEST(Planner, SimdBackendIsPricedAtVectorWidth) {
  // kEstimate planning for the "simd" backend must run on the SIMD cost
  // model at the runtime-dispatched width; on a host that dispatches to
  // scalar the two models coincide, so only agreement is asserted there.
  const int n = 10;
  auto t = Planner().strategy(Strategy::kEstimate).backend("simd").plan(n);
  model::CombinedModel model;
  model.vector_width = simd::vector_width(simd::active_level());
  search::DpOptions options;
  options.max_parts = 4;
  const auto direct = search::dp_search(
      n, [&model](const core::Plan& p) { return model(p); }, options);
  EXPECT_EQ(t.plan(), direct.plan);
  EXPECT_DOUBLE_EQ(t.planning().cost, direct.cost);
}

}  // namespace
}  // namespace whtlab::api
