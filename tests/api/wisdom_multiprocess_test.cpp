// Cross-process wisdom merge: save_merged's advisory flock makes the
// read-merge-rename one critical section, so concurrent *processes* (not
// just threads — wisdom_test.cpp covers those) never drop each other's
// entries.  Verified the direct way: fork real writer processes and require
// the union to survive every interleaving.
#include <gtest/gtest.h>

#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <string>
#include <vector>

#include "api/wisdom.hpp"
#include "core/plan.hpp"

namespace whtlab::api {
namespace {

TEST(WisdomMultiProcess, ForkedWritersLoseNothing) {
  const std::string path = ::testing::TempDir() + "wisdom_fork.txt";
  std::remove(path.c_str());
  std::remove((path + ".lock").c_str());

  constexpr int kWriters = 4;
  constexpr int kEntriesPerWriter = 6;

  std::vector<pid_t> children;
  for (int w = 0; w < kWriters; ++w) {
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0) << "fork failed";
    if (pid == 0) {
      // Child: write each entry through its own save_merged — every write
      // is a full read-merge-rename racing the sibling processes.  _exit
      // (not exit) so the forked gtest runtime does not run atexit hooks.
      for (int i = 0; i < kEntriesPerWriter; ++i) {
        const int n = 4 + (w * kEntriesPerWriter + i) % 8;
        Wisdom wisdom;
        wisdom.insert(
            Wisdom::Key{"scalar", n, "measure",
                        "proc" + std::to_string(w) + "_" + std::to_string(i)},
            core::Plan::iterative(n));
        try {
          wisdom.save_merged(path);
        } catch (...) {
          ::_exit(1);
        }
      }
      ::_exit(0);
    }
    children.push_back(pid);
  }

  for (const pid_t pid : children) {
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
        << "writer process failed";
  }

  const Wisdom merged = Wisdom::load(path);
  EXPECT_EQ(merged.size(),
            static_cast<std::size_t>(kWriters * kEntriesPerWriter));
  for (int w = 0; w < kWriters; ++w) {
    for (int i = 0; i < kEntriesPerWriter; ++i) {
      const int n = 4 + (w * kEntriesPerWriter + i) % 8;
      EXPECT_NE(merged.lookup(Wisdom::Key{
                    "scalar", n, "measure",
                    "proc" + std::to_string(w) + "_" + std::to_string(i)}),
                nullptr)
          << "writer " << w << " entry " << i << " was dropped";
    }
  }

  std::remove(path.c_str());
  std::remove((path + ".lock").c_str());
}

// The lock file is reclaimed by the last holder (unlink-while-holding +
// revalidate-after-acquire in wisdom.cpp's FileLock), AND the reclamation
// never costs an entry: many processes hammering save_merged — each
// acquisition racing a sibling's unlink — still produce the exact union,
// and no `*.lock` litter survives.
TEST(WisdomMultiProcess, LockFileReclaimedWithoutLosingEntries) {
  const std::string path = ::testing::TempDir() + "wisdom_lock_reclaim.txt";
  std::remove(path.c_str());
  std::remove((path + ".lock").c_str());

  constexpr int kWriters = 6;
  constexpr int kRoundsPerWriter = 8;

  std::vector<pid_t> children;
  for (int w = 0; w < kWriters; ++w) {
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0) << "fork failed";
    if (pid == 0) {
      // Every round creates, locks, and unlinks the lock file afresh — the
      // maximally reclaim-heavy schedule, so any unlink/acquire race (a
      // waiter left holding an orphaned inode while a second waiter locks
      // the recreated file) gets many chances to drop an entry.
      for (int i = 0; i < kRoundsPerWriter; ++i) {
        Wisdom wisdom;
        wisdom.insert(
            Wisdom::Key{"scalar", 4 + (i % 8), "measure",
                        "lock" + std::to_string(w) + "_" + std::to_string(i)},
            core::Plan::iterative(4 + (i % 8)));
        try {
          wisdom.save_merged(path);
        } catch (...) {
          ::_exit(1);
        }
      }
      ::_exit(0);
    }
    children.push_back(pid);
  }

  for (const pid_t pid : children) {
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
        << "writer process failed";
  }

  const Wisdom merged = Wisdom::load(path);
  EXPECT_EQ(merged.size(),
            static_cast<std::size_t>(kWriters * kRoundsPerWriter));
  for (int w = 0; w < kWriters; ++w) {
    for (int i = 0; i < kRoundsPerWriter; ++i) {
      EXPECT_NE(merged.lookup(Wisdom::Key{
                    "scalar", 4 + (i % 8), "measure",
                    "lock" + std::to_string(w) + "_" + std::to_string(i)}),
                nullptr)
          << "writer " << w << " round " << i << " was dropped";
    }
  }

  // The whole point: after the last save_merged returns, no lock file.
  struct stat st {};
  EXPECT_NE(::stat((path + ".lock").c_str(), &st), 0)
      << "lock file left behind after the last holder released";

  std::remove(path.c_str());
}

TEST(WisdomMultiProcess, SaveMergedReturnsTheUnion) {
  const std::string path = ::testing::TempDir() + "wisdom_merge_union.txt";
  std::remove(path.c_str());
  std::remove((path + ".lock").c_str());

  Wisdom first;
  first.insert(Wisdom::Key{"scalar", 5, "estimate", "generated"},
               core::Plan::iterative(5));
  first.save_merged(path);

  Wisdom second;
  second.insert(Wisdom::Key{"scalar", 6, "estimate", "generated"},
                core::Plan::iterative(6));
  const Wisdom merged = second.save_merged(path);

  // Unlike plain save() (whole-file replace; wisdom_test.cpp), save_merged
  // accumulates: both writers' entries are on disk and in the return value.
  EXPECT_EQ(merged.size(), 2u);
  EXPECT_EQ(Wisdom::load(path).size(), 2u);

  std::remove(path.c_str());
  std::remove((path + ".lock").c_str());
}

}  // namespace
}  // namespace whtlab::api
