// Engine circuit breaker: serving-time backend failures are absorbed by a
// fallback re-run on the reference backend from a pristine input snapshot,
// repeated failures quarantine the backend out of arbitration, and a
// probation period re-probes it with live traffic.  Failures are injected
// through util/fault points (engine.exec.<backend> throws before the run,
// engine.corrupt.<backend> poisons the output after it), so every path is
// deterministic.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstring>
#include <limits>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "api/engine.hpp"
#include "api/executor_backend.hpp"
#include "api/planner.hpp"
#include "core/executor.hpp"
#include "core/plan.hpp"
#include "util/fault.hpp"
#include "util/rng.hpp"

namespace whtlab::api {
namespace {

namespace fault = util::fault;
using util::random_vector;

/// Correct executor with a scripted cost, mirroring engine_test.cpp: the
/// breaker tests need deterministic arbitration AND deterministic failures,
/// so the faults come from fault points, not from the backend itself.
class QBackend final : public ExecutorBackend {
 public:
  QBackend(std::string name, double unit_cost)
      : name_(std::move(name)), unit_cost_(unit_cost) {}

  const std::string& name() const override { return name_; }

  void run(const core::Plan& plan, double* x, std::ptrdiff_t stride,
           ExecContext& /*ctx*/) const override {
    core::execute_node(plan.root(), x, stride,
                       core::codelet_table(core::CodeletBackend::kGenerated));
  }

  std::function<double(const core::Plan&)> cost_model() const override {
    const double cost = unit_cost_;
    return [cost](const core::Plan&) { return cost; };
  }

 private:
  std::string name_;
  double unit_cost_;
};

/// "q-fast" wins arbitration while healthy; "q-slow" is the runner-up the
/// arbiter must fail over to once q-fast is quarantined.
void ensure_backends() {
  auto& registry = BackendRegistry::global();
  if (registry.contains("q-fast")) return;
  registry.register_factory("q-fast", [](const BackendOptions&) {
    return std::make_unique<QBackend>("q-fast", 10.0);
  });
  registry.register_factory("q-slow", [](const BackendOptions&) {
    return std::make_unique<QBackend>("q-slow", 1000.0);
  });
}

EngineOptions breaker_options(int strikes, std::uint64_t probation_ms) {
  ensure_backends();
  EngineOptions options;
  options.backends = {"q-fast", "q-slow"};
  options.measure_costs = false;
  options.quarantine_strikes = strikes;
  options.probation_ms = probation_ms;
  return options;
}

std::vector<double> reference_wht(int n, const std::vector<double>& input) {
  std::vector<double> out = input;
  Transform reference(Planner().backend("generated").plan(n));
  reference.execute(out.data());
  return out;
}

class EngineQuarantineTest : public ::testing::Test {
 protected:
  void SetUp() override { fault::disarm(); }
  void TearDown() override { fault::disarm(); }
};

TEST_F(EngineQuarantineTest, OptionsAreValidated) {
  ensure_backends();
  EngineOptions bad = breaker_options(2, 60000);
  bad.quarantine_strikes = -1;
  EXPECT_THROW(Engine{bad}, std::invalid_argument);
  bad = breaker_options(2, 60000);
  bad.probation_ms = 0;
  EXPECT_THROW(Engine{bad}, std::invalid_argument);
}

TEST_F(EngineQuarantineTest, FailureFallsBackBitExactly) {
  Engine engine(breaker_options(/*strikes=*/3, /*probation_ms=*/60000));
  fault::arm("engine.exec.q-fast=always");

  const int n = 6;
  const auto input = random_vector(std::size_t{1} << n, 11);
  const auto expected = reference_wht(n, input);
  auto x = input;
  engine.execute(n, x.data());  // q-fast wins, fails, generated re-runs
  EXPECT_EQ(0, std::memcmp(x.data(), expected.data(),
                           expected.size() * sizeof(double)));

  const auto stats = engine.stats();
  EXPECT_EQ(stats.failures, 1u);
  EXPECT_EQ(stats.fallbacks, 1u);
  EXPECT_EQ(stats.per_backend.at("generated"), 1u)
      << "the serve must be recorded under the backend that ran it";
  EXPECT_TRUE(stats.quarantined.empty()) << "one strike of three";
}

TEST_F(EngineQuarantineTest, RepeatedFailuresQuarantineAndFailOver) {
  Engine engine(breaker_options(/*strikes=*/2, /*probation_ms=*/60000));
  fault::arm("engine.exec.q-fast=always");

  const int n = 6;
  for (int i = 0; i < 2; ++i) {
    auto x = random_vector(std::size_t{1} << n, 20 + i);
    engine.execute(n, x.data());
  }
  auto stats = engine.stats();
  EXPECT_EQ(stats.quarantine_trips.at("q-fast"), 1u);
  ASSERT_EQ(stats.quarantined.size(), 1u);
  EXPECT_EQ(stats.quarantined[0], "q-fast");

  // Quarantined: the arbiter must not route to q-fast any more — the
  // runner-up serves directly (no further failures or fallbacks).
  const auto decision = engine.arbitrate(n, 1);
  EXPECT_EQ(decision.backend, "q-slow");
  const auto input = random_vector(std::size_t{1} << n, 33);
  auto x = input;
  engine.execute(n, x.data());
  EXPECT_EQ(0, std::memcmp(x.data(), reference_wht(n, input).data(),
                           x.size() * sizeof(double)));
  stats = engine.stats();
  EXPECT_EQ(stats.failures, 2u) << "q-slow serves cleanly";
  EXPECT_GE(stats.per_backend.at("q-slow"), 1u);
}

TEST_F(EngineQuarantineTest, ProbationProbeClearsQuarantine) {
  Engine engine(breaker_options(/*strikes=*/1, /*probation_ms=*/50));
  fault::arm("engine.exec.q-fast=once");

  const int n = 6;
  auto x = random_vector(std::size_t{1} << n, 5);
  engine.execute(n, x.data());  // the one injected failure: trip
  ASSERT_EQ(engine.stats().quarantined.size(), 1u);

  std::this_thread::sleep_for(std::chrono::milliseconds(70));
  // Probation elapsed and the fault is spent: the arbiter re-probes q-fast
  // with live traffic, the probe succeeds, the breaker clears.
  const auto decision = engine.arbitrate(n, 1);
  EXPECT_EQ(decision.backend, "q-fast");
  auto y = random_vector(std::size_t{1} << n, 6);
  engine.execute(n, y.data());
  const auto stats = engine.stats();
  EXPECT_TRUE(stats.quarantined.empty());
  EXPECT_EQ(stats.quarantine_trips.at("q-fast"), 1u);
}

TEST_F(EngineQuarantineTest, FailedProbeRetripsImmediately) {
  Engine engine(breaker_options(/*strikes=*/2, /*probation_ms=*/50));
  fault::arm("engine.exec.q-fast=always");

  const int n = 6;
  for (int i = 0; i < 2; ++i) {
    auto x = random_vector(std::size_t{1} << n, 40 + i);
    engine.execute(n, x.data());
  }
  ASSERT_EQ(engine.stats().quarantine_trips.at("q-fast"), 1u);

  std::this_thread::sleep_for(std::chrono::milliseconds(70));
  // The probe fails (fault still armed): ONE failure re-trips — the trip
  // left the strike count at the threshold, no fresh streak needed.
  auto x = random_vector(std::size_t{1} << n, 50);
  engine.execute(n, x.data());
  const auto stats = engine.stats();
  EXPECT_EQ(stats.quarantine_trips.at("q-fast"), 2u);
  ASSERT_EQ(stats.quarantined.size(), 1u);
}

TEST_F(EngineQuarantineTest, VerifyFiniteCatchesCorruptOutput) {
  EngineOptions options = breaker_options(/*strikes=*/1, /*probation_ms=*/60000);
  options.verify_finite = true;
  Engine engine(options);
  fault::arm("engine.corrupt.q-fast=once");

  const int n = 6;
  const auto input = random_vector(std::size_t{1} << n, 9);
  const auto expected = reference_wht(n, input);
  auto x = input;
  engine.execute(n, x.data());
  // The corrupt (NaN) output was detected, the input restored from the
  // snapshot, and the reference backend produced the true result.
  EXPECT_EQ(0, std::memcmp(x.data(), expected.data(),
                           expected.size() * sizeof(double)));
  const auto stats = engine.stats();
  EXPECT_EQ(stats.failures, 1u);
  EXPECT_EQ(stats.quarantine_trips.at("q-fast"), 1u);
}

TEST_F(EngineQuarantineTest, NonFiniteInputIsTheCallersBusiness) {
  EngineOptions options = breaker_options(/*strikes=*/1, /*probation_ms=*/60000);
  options.verify_finite = true;
  Engine engine(options);

  const int n = 4;
  auto x = random_vector(std::size_t{1} << n, 3);
  x[2] = std::numeric_limits<double>::quiet_NaN();
  engine.execute(n, x.data());  // NaN in, NaN out — not a backend failure
  EXPECT_TRUE(std::isnan(x[0]) || std::isnan(x[2]));
  const auto stats = engine.stats();
  EXPECT_EQ(stats.failures, 0u);
  EXPECT_TRUE(stats.quarantined.empty());
}

TEST_F(EngineQuarantineTest, SubmitPathFallsBackToo) {
  Engine engine(breaker_options(/*strikes=*/3, /*probation_ms=*/60000));
  fault::arm("engine.exec.q-fast=always");

  const int n = 5;
  const auto input = random_vector(std::size_t{1} << n, 77);
  const auto expected = reference_wht(n, input);
  auto x = input;
  auto done = engine.submit(n, x.data());
  done.get();  // the dispatcher absorbed the failure; no exception
  EXPECT_EQ(0, std::memcmp(x.data(), expected.data(),
                           expected.size() * sizeof(double)));
  EXPECT_GE(engine.stats().fallbacks, 1u);
}

TEST_F(EngineQuarantineTest, DisabledBreakerPropagatesExceptions) {
  Engine engine(breaker_options(/*strikes=*/0, /*probation_ms=*/2000));
  fault::arm("engine.exec.q-fast=always");
  auto x = random_vector(std::size_t{1} << 5, 1);
  EXPECT_THROW(engine.execute(5, x.data()), std::runtime_error)
      << "strikes == 0 must mean exactly the pre-breaker behavior";
}

}  // namespace
}  // namespace whtlab::api
