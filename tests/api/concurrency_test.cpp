// The concurrent-serving execution contract: one wht::Transform, many
// threads, no external locking — every backend, bit-identical to serial
// execution.  These suites are the ThreadSanitizer CI job's main workload
// (.github/workflows/ci.yml, WHTLAB_TSAN=ON).
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <thread>
#include <vector>

#include "api/exec_context.hpp"
#include "api/planner.hpp"
#include "api/transform.hpp"
#include "core/executor.hpp"
#include "core/instrumented.hpp"
#include "core/plan.hpp"
#include "util/rng.hpp"

namespace whtlab::api {
namespace {

using util::random_vector;

/// One shared Transform hammered from `threads` threads; every thread's
/// every output must equal the serial output of the same Transform.
void hammer(const Transform& transform, int threads, int iterations,
            std::uint64_t seed) {
  const std::uint64_t n = transform.size();
  const std::vector<double> input = random_vector(n, seed);
  std::vector<double> reference = input;
  transform.execute(reference.data());

  std::atomic<int> mismatches{0};
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&transform, &input, &reference, &mismatches,
                       iterations]() {
      std::vector<double> work(input.size());
      for (int i = 0; i < iterations; ++i) {
        work = input;
        transform.execute(work.data());
        if (work != reference) mismatches.fetch_add(1);
      }
    });
  }
  for (auto& thread : pool) thread.join();
  EXPECT_EQ(mismatches.load(), 0)
      << transform.backend_name() << " n=" << transform.log2_size();
}

class SharedTransformTest : public ::testing::TestWithParam<const char*> {};

TEST_P(SharedTransformTest, EightThreadsBitIdenticalToSerial) {
  for (const int n : {10, 16}) {
    const core::Plan plan = core::Plan::balanced_binary(n, 4);
    const auto transform =
        Planner().fixed(plan).backend(GetParam()).threads(2).plan();
    hammer(transform, /*threads=*/8, /*iterations=*/n >= 16 ? 3 : 8,
           /*seed=*/static_cast<std::uint64_t>(n));
  }
}

TEST_P(SharedTransformTest, ConcurrentBatchesBitIdenticalToSerial) {
  const core::Plan plan = core::Plan::iterative_radix(9, 4);
  const std::uint64_t n = plan.size();
  constexpr std::size_t kBatch = 9;  // full SIMD groups plus a remainder
  const auto transform =
      Planner().fixed(plan).backend(GetParam()).threads(2).plan();

  const std::vector<double> input = random_vector(n * kBatch, 77);
  std::vector<double> reference = input;
  transform.execute_many(reference.data(), kBatch);

  std::atomic<int> mismatches{0};
  std::vector<std::thread> pool;
  for (int t = 0; t < 8; ++t) {
    pool.emplace_back([&]() {
      std::vector<double> work(input.size());
      for (int i = 0; i < 4; ++i) {
        work = input;
        transform.execute_many(work.data(), kBatch);
        if (work != reference) mismatches.fetch_add(1);
      }
    });
  }
  for (auto& thread : pool) thread.join();
  EXPECT_EQ(mismatches.load(), 0) << transform.backend_name();
}

INSTANTIATE_TEST_SUITE_P(AllBackends, SharedTransformTest,
                         ::testing::Values("generated", "template",
                                           "instrumented", "parallel", "simd",
                                           "fused"));

TEST(SharedTransform, PerThreadOpCountsAreExact) {
  // The instrumented backend's tallies land in each thread's own pooled
  // context: concurrent executes never tear each other's counts.
  const core::Plan plan = core::Plan::balanced_binary(10, 4);
  const auto transform = Planner().fixed(plan).backend("instrumented").plan();
  const core::OpCounts expected = core::count_ops(plan);

  std::atomic<int> wrong{0};
  std::vector<std::thread> pool;
  for (int t = 0; t < 8; ++t) {
    pool.emplace_back([&]() {
      std::vector<double> work = random_vector(plan.size(), 5);
      for (int i = 0; i < 6; ++i) {
        transform.execute(work.data());
        const core::OpCounts* counts = transform.last_op_counts();
        if (counts == nullptr || !(*counts == expected)) wrong.fetch_add(1);
      }
    });
  }
  for (auto& thread : pool) thread.join();
  EXPECT_EQ(wrong.load(), 0);
}

TEST(SharedTransform, ExplicitContextCarriesTheCall) {
  // Caller-owned contexts: tallies and scratch live on the caller's
  // context, not on the transform's pool.
  const core::Plan plan = core::Plan::iterative(8);
  const auto transform = Planner().fixed(plan).backend("instrumented").plan();
  std::vector<double> work = random_vector(plan.size(), 9);

  ExecContext ctx;
  transform.execute(work.data(), 1, ctx);
  ASSERT_NE(ctx.last_op_counts(), nullptr);
  EXPECT_EQ(*ctx.last_op_counts(), core::count_ops(plan));
  // The pooled path on this thread saw nothing.
  EXPECT_EQ(transform.last_op_counts(), nullptr);
}

TEST(SharedTransform, ApplyIsSafeFromManyThreads) {
  // apply() stages through per-thread context scratch; concurrent calls
  // must neither race nor cross results.
  const core::Plan plan = core::Plan::balanced_binary(8, 4);
  const auto transform = Planner().fixed(plan).backend("simd").plan();

  std::atomic<int> mismatches{0};
  std::vector<std::thread> pool;
  for (int t = 0; t < 8; ++t) {
    pool.emplace_back([&, t]() {
      const auto input =
          random_vector(plan.size(), static_cast<std::uint64_t>(100 + t));
      auto reference = input;
      core::execute(plan, reference.data());
      for (int i = 0; i < 6; ++i) {
        if (transform.apply(input) != reference) mismatches.fetch_add(1);
      }
    });
  }
  for (auto& thread : pool) thread.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(ContextPool, LeasesAreReusedAndBoundedByConcurrency) {
  ContextPool pool;
  ExecContext* first = nullptr;
  {
    auto lease = pool.acquire();
    first = &lease.context();
    EXPECT_EQ(pool.size(), 1u);
  }
  {
    // Sequential calls — even from different threads — reuse the same
    // context: the pool is bounded by peak concurrent leases, not by how
    // many threads have ever served.
    std::thread other([&pool, first]() {
      auto lease = pool.acquire();
      EXPECT_EQ(&lease.context(), first);
    });
    other.join();
    EXPECT_EQ(pool.size(), 1u);
  }
  {
    auto one = pool.acquire();
    auto two = pool.acquire();  // concurrent: a second context is created
    EXPECT_NE(&one.context(), &two.context());
    EXPECT_EQ(pool.size(), 2u);
  }
}

TEST(ContextPool, TalliesArePerThread) {
  ContextPool pool;
  core::OpCounts mine{};
  mine.flops = 7;
  pool.record_tallies(mine);
  ASSERT_NE(pool.tallies(), nullptr);
  EXPECT_EQ(pool.tallies()->flops, 7u);
  std::thread other([&pool]() {
    EXPECT_EQ(pool.tallies(), nullptr);  // never recorded on this thread
    core::OpCounts theirs{};
    theirs.flops = 9;
    pool.record_tallies(theirs);
    EXPECT_EQ(pool.tallies()->flops, 9u);
  });
  other.join();
  EXPECT_EQ(pool.tallies()->flops, 7u);  // unaffected by the other thread
}

TEST(ContextPool, ReturnedContextsDropTheirTallies) {
  // One call's instrumented tallies must not leak into the next lease.
  ContextPool pool;
  {
    auto lease = pool.acquire();
    core::OpCounts counts{};
    counts.loads = 3;
    lease.context().set_op_counts(counts);
  }
  auto lease = pool.acquire();
  EXPECT_EQ(lease.context().last_op_counts(), nullptr);
}

TEST(ScratchArena, GrowsAndReuses) {
  util::ScratchArena arena;
  double* small = arena.acquire(16);
  ASSERT_NE(small, nullptr);
  const std::size_t cap = arena.capacity();
  EXPECT_GE(cap, 16u);
  EXPECT_EQ(arena.acquire(8), small);   // no shrink, same buffer
  EXPECT_EQ(arena.capacity(), cap);
  double* big = arena.acquire(4096);    // grows
  ASSERT_NE(big, nullptr);
  EXPECT_GE(arena.capacity(), 4096u);
}

}  // namespace
}  // namespace whtlab::api
