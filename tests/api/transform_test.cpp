// wht::Transform: execution entry points vs core::execute, batching,
// striding, the copying conveniences, and empty-transform errors.
#include "api/transform.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "api/planner.hpp"
#include "core/executor.hpp"
#include "core/plan.hpp"
#include "util/aligned_buffer.hpp"
#include "util/rng.hpp"

namespace whtlab::api {
namespace {

Transform fixed(const core::Plan& plan, const std::string& backend = "generated") {
  return Planner().fixed(plan).backend(backend).plan();
}

using util::random_vector;

TEST(Transform, DefaultConstructedIsInvalidAndThrows) {
  Transform t;
  EXPECT_FALSE(t.valid());
  double x[2] = {1.0, -1.0};
  EXPECT_THROW(t.execute(x), std::logic_error);
  EXPECT_THROW(t.execute_many(x, 1), std::logic_error);
  EXPECT_THROW(t.last_op_counts(), std::logic_error);
}

TEST(Transform, ExecuteMatchesCoreExecute) {
  const core::Plan plan = core::Plan::balanced_binary(10, 4);
  auto t = fixed(plan);
  auto data = random_vector(plan.size(), 1);
  auto reference = data;
  t.execute(data.data());
  core::execute(plan, reference.data());
  EXPECT_EQ(data, reference);  // same backend, bit-identical
}

TEST(Transform, PlanRoundTripsThroughGrammar) {
  const std::string grammar = "split[small[2],split[small[3],small[3]]]";
  auto t = Planner().fixed(grammar).plan();
  EXPECT_EQ(t.plan().to_string(), grammar);
  EXPECT_EQ(t.log2_size(), 8);
  EXPECT_EQ(t.size(), 256u);
  // ...and the Transform's plan re-parses to an equal plan (plan_io round
  // trip through the façade accessor).
  auto again = Planner().fixed(t.plan().to_string()).plan();
  EXPECT_EQ(again.plan(), t.plan());
}

TEST(Transform, ExecuteManyMatchesPerVectorExecution) {
  const core::Plan plan = core::Plan::iterative_radix(9, 4);
  const std::uint64_t n = plan.size();
  constexpr std::size_t kBatch = 5;
  auto t = fixed(plan);
  auto batch = random_vector(n * kBatch, 2);
  auto reference = batch;
  t.execute_many(batch.data(), kBatch);
  for (std::size_t v = 0; v < kBatch; ++v) {
    core::execute(plan, reference.data() + v * n);
  }
  EXPECT_EQ(batch, reference);
}

TEST(Transform, ExecuteManyWithCustomDist) {
  const core::Plan plan = core::Plan::small(4);
  const std::uint64_t n = plan.size();
  const std::ptrdiff_t dist = static_cast<std::ptrdiff_t>(n) + 7;
  constexpr std::size_t kBatch = 3;
  auto t = fixed(plan);
  std::vector<double> batch(static_cast<std::size_t>(dist) * kBatch, 0.5);
  auto reference = batch;
  t.execute_many(batch.data(), kBatch, dist);
  for (std::size_t v = 0; v < kBatch; ++v) {
    core::execute(plan, reference.data() + v * static_cast<std::size_t>(dist));
  }
  EXPECT_EQ(batch, reference);
}

TEST(Transform, ExecuteManyRejectsOverlappingDist) {
  auto t = fixed(core::Plan::small(4));
  std::vector<double> batch(64, 1.0);
  EXPECT_THROW(t.execute_many(batch.data(), 2, 8), std::invalid_argument);
  EXPECT_THROW(t.execute_many(batch.data(), 2, 0), std::invalid_argument);
}

TEST(Transform, StridedExecuteMatchesDense) {
  const core::Plan plan = core::Plan::balanced_binary(7, 3);
  const std::uint64_t n = plan.size();
  constexpr std::ptrdiff_t kStride = 2;
  auto t = fixed(plan);
  std::vector<double> strided(n * kStride, 0.0);
  std::vector<double> dense(n);
  util::Rng rng(3);
  for (std::uint64_t i = 0; i < n; ++i) {
    dense[i] = rng.uniform(-1, 1);
    strided[i * kStride] = dense[i];
  }
  t.execute(strided.data(), kStride);
  core::execute(plan, dense.data());
  for (std::uint64_t i = 0; i < n; ++i) {
    EXPECT_EQ(strided[i * kStride], dense[i]) << i;
  }
}

TEST(Transform, ZeroStrideThrows) {
  auto t = fixed(core::Plan::small(3));
  std::vector<double> x(t.size(), 1.0);
  EXPECT_THROW(t.execute(x.data(), 0), std::invalid_argument);
}

TEST(Transform, ExecuteCopyLeavesInputIntact) {
  const core::Plan plan = core::Plan::right_recursive(8);
  auto t = fixed(plan);
  const auto input = random_vector(plan.size(), 4);
  auto in_copy = input;
  std::vector<double> out(plan.size(), 0.0);
  t.execute_copy(in_copy.data(), out.data());
  EXPECT_EQ(in_copy, input);
  auto reference = input;
  core::execute(plan, reference.data());
  EXPECT_EQ(out, reference);
}

TEST(Transform, ApplyReturnsTransformedCopy) {
  const core::Plan plan = core::Plan::iterative(6);
  auto t = fixed(plan);
  const auto input = random_vector(plan.size(), 5);
  const auto output = t.apply(input);
  auto reference = input;
  core::execute(plan, reference.data());
  EXPECT_EQ(output, reference);
  EXPECT_THROW(t.apply(std::vector<double>(3, 0.0)), std::invalid_argument);
}

TEST(Transform, ParallelBackendMatchesSequential) {
  const core::Plan plan = core::Plan::balanced_binary(13, 5);
  auto par = Planner().fixed(plan).threads(4).plan();
  EXPECT_EQ(par.backend_name(), "parallel");
  auto seq = fixed(plan);
  auto a = random_vector(plan.size(), 6);
  auto b = a;
  par.execute(a.data());
  seq.execute(b.data());
  EXPECT_EQ(a, b);
}

TEST(Transform, InstrumentedBackendExposesOpCounts) {
  const core::Plan plan = core::Plan::iterative(8);
  auto t = fixed(plan, "instrumented");
  auto data = random_vector(plan.size(), 7);
  auto reference = data;
  t.execute(data.data());
  core::execute(plan, reference.data());
  EXPECT_EQ(data, reference);
  const core::OpCounts* counts = t.last_op_counts();
  ASSERT_NE(counts, nullptr);
  EXPECT_EQ(*counts, core::count_ops(plan));
}

TEST(Transform, MeasureReportsOrderedStatistics) {
  auto t = fixed(core::Plan::balanced_binary(8, 4));
  perf::MeasureOptions options;
  options.repetitions = 5;
  options.warmup = 1;
  const auto result = t.measure(options);
  EXPECT_GT(result.min_cycles, 0.0);
  EXPECT_LE(result.min_cycles, result.median_cycles);
  EXPECT_GE(result.inner_loop, 1);
}

TEST(Transform, MeasureRejectsNonPositiveRepetitions) {
  auto t = fixed(core::Plan::small(4));
  perf::MeasureOptions options;
  options.repetitions = 0;
  EXPECT_THROW(t.measure(options), std::invalid_argument);
  options.repetitions = 1;
  options.warmup = -1;
  EXPECT_THROW(t.measure(options), std::invalid_argument);
}

TEST(Transform, MoveTransfersOwnership) {
  auto t = fixed(core::Plan::small(5));
  auto moved = std::move(t);
  EXPECT_FALSE(t.valid());  // NOLINT(bugprone-use-after-move): contract test
  EXPECT_TRUE(moved.valid());
  std::vector<double> x(moved.size(), 1.0);
  moved.execute(x.data());
  EXPECT_EQ(x[0], static_cast<double>(moved.size()));
}

}  // namespace
}  // namespace whtlab::api
