// Engine live telemetry: re-anchoring arbitration and drift demotion.
//
// Backends here execute the real transform and then busy-wait a
// *controllable* wall-clock delay, so their measured first-touch anchors
// and their live served cycles are both dominated by a knob the test owns.
// Degrading the fast backend at runtime models the drift the subsystem
// exists to catch (frequency scaling, co-tenancy, cache pressure): the
// arbiter must re-price it from live observations and, with the drift
// breaker armed, demote it through the quarantine machinery and let
// probation recover it once the knob is restored.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "api/engine.hpp"
#include "api/executor_backend.hpp"
#include "core/executor.hpp"
#include "core/plan.hpp"
#include "util/rng.hpp"

namespace whtlab::api {
namespace {

using util::random_vector;

std::atomic<std::uint64_t> g_fast_spin_ns{30000};
std::atomic<std::uint64_t> g_slow_spin_ns{120000};

/// Correct executor whose runtime is a test-owned busy-wait: the spin
/// dwarfs the tiny transform, so measured cycles track the knob.
class SpinBackend final : public ExecutorBackend {
 public:
  SpinBackend(std::string name, std::atomic<std::uint64_t>* spin_ns)
      : name_(std::move(name)), spin_ns_(spin_ns) {}

  const std::string& name() const override { return name_; }

  void run(const core::Plan& plan, double* x, std::ptrdiff_t stride,
           ExecContext& /*ctx*/) const override {
    core::execute_node(plan.root(), x, stride,
                       core::codelet_table(core::CodeletBackend::kGenerated));
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::nanoseconds(spin_ns_->load(std::memory_order_relaxed));
    while (std::chrono::steady_clock::now() < deadline) {
    }
  }

 private:
  std::string name_;
  std::atomic<std::uint64_t>* spin_ns_;
};

void ensure_spin_backends() {
  auto& registry = BackendRegistry::global();
  if (registry.contains("drift-fast")) return;
  registry.register_factory("drift-fast", [](const BackendOptions&) {
    return std::make_unique<SpinBackend>("drift-fast", &g_fast_spin_ns);
  });
  registry.register_factory("drift-slow", [](const BackendOptions&) {
    return std::make_unique<SpinBackend>("drift-slow", &g_slow_spin_ns);
  });
}

EngineOptions drift_options() {
  ensure_spin_backends();
  EngineOptions options;
  options.backends = {"drift-fast", "drift-slow"};
  options.measure_costs = true;  // anchors in cycles, like the live series
  options.measure.warmup = 1;
  options.measure.repetitions = 3;
  options.measure.inner_loop = 1;
  options.telemetry_decay_window = 0;  // lifetime stats: deterministic counts
  options.reanchor_min_samples = 8;
  return options;
}

class EngineDriftTest : public ::testing::Test {
 protected:
  void SetUp() override {
    g_fast_spin_ns.store(30000);   // 30 us: wins arbitration while healthy
    g_slow_spin_ns.store(120000);  // 120 us: the runner-up
  }
};

TEST_F(EngineDriftTest, OptionsAreValidated) {
  EngineOptions bad = drift_options();
  bad.reanchor_blend = 1.5;
  EXPECT_THROW(Engine{bad}, std::invalid_argument);
  bad = drift_options();
  bad.drift_demote_factor = -1.0;
  EXPECT_THROW(Engine{bad}, std::invalid_argument);
  bad = drift_options();
  bad.drift_demote_factor = 3.0;
  bad.probation_ms = 0;
  EXPECT_THROW(Engine{bad}, std::invalid_argument);
}

TEST_F(EngineDriftTest, RecordsTelemetryPerSeries) {
  Engine engine(drift_options());
  const int n = 4;
  for (int i = 0; i < 5; ++i) {
    auto x = random_vector(std::size_t{1} << n, 10 + i);
    engine.execute(n, x.data());
  }
  std::uint64_t singles = 0;
  for (const auto& series : engine.telemetry_snapshot()) {
    EXPECT_EQ(series.n, n);
    if (!series.batch) singles += series.stats.count;
    if (series.stats.count > 0) {
      EXPECT_GT(series.stats.mean(), 0.0);
      EXPECT_LE(series.stats.percentile(0.5), series.stats.percentile(0.99));
    }
  }
  EXPECT_EQ(singles, 5u) << "every served single must be recorded";
}

TEST_F(EngineDriftTest, ReanchorsArbitrationFromLiveObservations) {
  EngineOptions options = drift_options();
  options.reanchor_blend = 0.9;  // live-dominated: drift flips the winner
  Engine engine(options);

  const int n = 4;
  ASSERT_EQ(engine.arbitrate(n, 1).backend, "drift-fast")
      << "healthy anchors: 30 us beats 120 us";

  // The fast backend degrades 20x under the arbiter's feet.  The anchor
  // alone would keep routing to it forever; the live blend must not.
  g_fast_spin_ns.store(600000);
  for (int i = 0; i < 8; ++i) {  // reanchor_min_samples observations
    auto x = random_vector(std::size_t{1} << n, 50 + i);
    engine.execute(n, x.data());
  }
  EXPECT_EQ(engine.arbitrate(n, 1).backend, "drift-slow")
      << "blended price of the degraded backend must exceed the runner-up";
}

TEST_F(EngineDriftTest, DriftDemotesThenProbationRecovers) {
  EngineOptions options = drift_options();
  options.drift_demote_factor = 3.0;
  options.probation_ms = 60;
  Engine engine(options);

  const int n = 4;
  ASSERT_EQ(engine.arbitrate(n, 1).backend, "drift-fast");

  // Degrade far past the demotion threshold (the log2 histogram quantises
  // p99 to within 2x, so 20x leaves no ambiguity) and serve until the
  // series holds enough samples for the breaker to judge.
  g_fast_spin_ns.store(600000);
  for (int i = 0; i < 8; ++i) {
    auto x = random_vector(std::size_t{1} << n, 80 + i);
    engine.execute(n, x.data());
  }
  auto stats = engine.stats();
  ASSERT_EQ(stats.quarantined.size(), 1u) << "p99 drift must trip the breaker";
  EXPECT_EQ(stats.quarantined[0], "drift-fast");
  EXPECT_EQ(stats.quarantine_trips.at("drift-fast"), 1u);
  EXPECT_EQ(engine.arbitrate(n, 1).backend, "drift-slow")
      << "a demoted backend is out of arbitration";

  // The incident passes (knob restored) and probation elapses: live
  // traffic re-probes the backend against its reset series, the probe
  // succeeds, and the breaker clears — full recovery, no intervention.
  g_fast_spin_ns.store(30000);
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  EXPECT_EQ(engine.arbitrate(n, 1).backend, "drift-fast")
      << "probation expiry must re-probe the demoted backend";
  auto x = random_vector(std::size_t{1} << n, 99);
  engine.execute(n, x.data());
  stats = engine.stats();
  EXPECT_TRUE(stats.quarantined.empty()) << "successful probe clears";
  EXPECT_EQ(stats.quarantine_trips.at("drift-fast"), 1u) << "no re-trip";
}

TEST_F(EngineDriftTest, DriftBreakerDisarmedNeverDemotes) {
  Engine engine(drift_options());  // drift_demote_factor = 0
  const int n = 4;
  g_fast_spin_ns.store(600000);
  for (int i = 0; i < 10; ++i) {
    auto x = random_vector(std::size_t{1} << n, 120 + i);
    engine.execute(n, x.data());
  }
  EXPECT_TRUE(engine.stats().quarantined.empty())
      << "factor 0 must mean exactly the pre-telemetry behavior";
}

}  // namespace
}  // namespace whtlab::api
