// Exhaustive parity of the fused-schedule engine against the scalar
// interpreter: every size up to 2^20, several plan shapes per size (the
// engine must be plan-oblivious), in-place / strided / out-of-place /
// batched paths, at every SIMD level this host can dispatch to.  Equality
// is bitwise (ASSERT_EQ on doubles): the fused passes retire the same
// butterflies in the same stage order, so there is no tolerance to hide a
// blocking or indexing bug behind.  The whole suite also runs under the CI
// ASan/UBSan job, which is what catches tile overruns.
#include "simd/fused_executor.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "api/wht.hpp"
#include "core/executor.hpp"
#include "core/plan.hpp"
#include "core/schedule.hpp"
#include "simd/cpu_features.hpp"
#include "util/aligned_buffer.hpp"
#include "util/rng.hpp"

namespace whtlab::simd {
namespace {

std::vector<SimdLevel> dispatchable_levels() {
  std::vector<SimdLevel> levels{SimdLevel::kScalar};
  if (detected_level() >= SimdLevel::kAvx2) levels.push_back(SimdLevel::kAvx2);
  if (detected_level() >= SimdLevel::kAvx512) levels.push_back(SimdLevel::kAvx512);
  return levels;
}

/// Plan shapes the lowering must be oblivious to.
std::vector<core::Plan> plan_shapes(int n) {
  std::vector<core::Plan> plans;
  plans.push_back(core::Plan::right_recursive(n));
  plans.push_back(core::Plan::iterative(n));
  plans.push_back(core::Plan::balanced_binary(n, 4));
  if (n > core::kMaxUnrolled) {
    plans.push_back(core::Plan::iterative_radix(n, core::kMaxUnrolled));
  }
  return plans;
}

class ForcedLevel {
 public:
  explicit ForcedLevel(SimdLevel level) { force_level(level); }
  ~ForcedLevel() { reset_forced_level(); }
};

class FusedParityTest : public ::testing::TestWithParam<SimdLevel> {};

TEST_P(FusedParityTest, AllSizesAllShapesUnitStride) {
  const SimdLevel level = GetParam();
  for (int n = 1; n <= 20; ++n) {
    for (const core::Plan& plan : plan_shapes(n)) {
      const core::Schedule schedule = core::lower_plan(plan, detect_blocking());
      util::AlignedBuffer x(plan.size());
      util::AlignedBuffer reference(plan.size());
      util::Rng rng(static_cast<std::uint64_t>(n) * 211 + 9);
      for (std::uint64_t i = 0; i < plan.size(); ++i) {
        x[i] = reference[i] = rng.uniform(-1, 1);
      }
      execute_fused(schedule, x.data(), 1, level);
      core::execute(plan, reference.data());
      for (std::uint64_t i = 0; i < plan.size(); ++i) {
        ASSERT_EQ(x[i], reference[i])
            << "level=" << to_string(level) << " n=" << n
            << " plan=" << plan.to_string() << " i=" << i;
      }
    }
  }
}

TEST_P(FusedParityTest, BlockGeometrySweep) {
  // Non-default blockings exercise every vector path boundary: nested and
  // single-round schedules, radix-1..3 top passes, unit passes at and below
  // the vector width (the latter must fall back scalar, not crash).
  const SimdLevel level = GetParam();
  const std::vector<core::BlockingConfig> configs = {
      {8, 3, 11, 17}, {4, 3, 6, 9}, {8, 1, 10, 12}, {2, 2, 2, 4}, {3, 2, 5, 16}};
  for (int n : {6, 10, 13, 18}) {
    const core::Plan plan = core::Plan::balanced_binary(n, 4);
    for (const core::BlockingConfig& config : configs) {
      const core::Schedule schedule = core::lower_size(n, config);
      util::AlignedBuffer x(plan.size());
      util::AlignedBuffer reference(plan.size());
      util::Rng rng(static_cast<std::uint64_t>(n) * 83 + 3);
      for (std::uint64_t i = 0; i < plan.size(); ++i) {
        x[i] = reference[i] = rng.uniform(-1, 1);
      }
      execute_fused(schedule, x.data(), 1, level);
      core::execute(plan, reference.data());
      for (std::uint64_t i = 0; i < plan.size(); ++i) {
        ASSERT_EQ(x[i], reference[i])
            << "level=" << to_string(level) << " n=" << n
            << " unit=" << config.unit_log2 << " l1=" << config.l1_block_log2
            << " l2=" << config.l2_block_log2 << " i=" << i;
      }
    }
  }
}

TEST_P(FusedParityTest, StridedFallsBackAndKeepsGapsUntouched) {
  const SimdLevel level = GetParam();
  for (int n : {4, 9, 12}) {
    for (const std::ptrdiff_t stride : {2, 3, 7}) {
      const core::Plan plan = core::Plan::balanced_binary(n, 4);
      const core::Schedule schedule = core::lower_plan(plan, detect_blocking());
      const std::uint64_t size = plan.size();
      util::AlignedBuffer strided(size * static_cast<std::uint64_t>(stride));
      util::AlignedBuffer dense(size);
      util::Rng rng(static_cast<std::uint64_t>(n) * 29 + 11);
      strided.fill(-9.0);
      for (std::uint64_t i = 0; i < size; ++i) {
        const double v = rng.uniform(-1, 1);
        strided[i * static_cast<std::uint64_t>(stride)] = v;
        dense[i] = v;
      }
      execute_fused(schedule, strided.data(), stride, level);
      core::execute(plan, dense.data());
      for (std::uint64_t i = 0; i < size; ++i) {
        ASSERT_EQ(strided[i * static_cast<std::uint64_t>(stride)], dense[i])
            << "level=" << to_string(level) << " n=" << n
            << " stride=" << stride << " i=" << i;
      }
      for (std::uint64_t i = 0; i + 1 < size; ++i) {
        for (std::ptrdiff_t off = 1; off < stride; ++off) {
          ASSERT_EQ(strided[i * static_cast<std::uint64_t>(stride) +
                            static_cast<std::uint64_t>(off)],
                    -9.0)
              << "sentinel clobbered at i=" << i << " off=" << off;
        }
      }
    }
  }
}

TEST_P(FusedParityTest, ExecuteManyBatchesWithPadding) {
  const SimdLevel level = GetParam();
  const ForcedLevel forced(level);
  for (int n : {1, 6, 11}) {
    const core::Plan plan = core::Plan::balanced_binary(n, 4);
    const core::Schedule schedule = core::lower_plan(plan, detect_blocking());
    const std::uint64_t size = plan.size();
    for (std::size_t count : {std::size_t{1}, std::size_t{5}, std::size_t{12}}) {
      for (const std::uint64_t pad : {std::uint64_t{0}, std::uint64_t{3}}) {
        const std::uint64_t dist = size + pad;
        util::AlignedBuffer work(count * dist);
        std::vector<double> reference(count * dist, -4.0);
        util::Rng rng(static_cast<std::uint64_t>(n) * 500 + count);
        work.fill(-4.0);
        for (std::size_t v = 0; v < count; ++v) {
          for (std::uint64_t i = 0; i < size; ++i) {
            work[v * dist + i] = reference[v * dist + i] = rng.uniform(-1, 1);
          }
        }
        for (int threads : {1, 3}) {
          util::AlignedBuffer batch(count * dist);
          for (std::uint64_t i = 0; i < count * dist; ++i) batch[i] = work[i];
          execute_fused_many(schedule, batch.data(), count,
                             static_cast<std::ptrdiff_t>(dist), threads);
          for (std::size_t v = 0; v < count; ++v) {
            std::vector<double> expect(reference.begin() + v * dist,
                                       reference.begin() + v * dist + size);
            core::execute(plan, expect.data());
            for (std::uint64_t i = 0; i < size; ++i) {
              ASSERT_EQ(batch[v * dist + i], expect[i])
                  << "level=" << to_string(level) << " n=" << n
                  << " count=" << count << " pad=" << pad
                  << " threads=" << threads << " v=" << v << " i=" << i;
            }
            for (std::uint64_t i = size; i < dist; ++i) {
              ASSERT_EQ(batch[v * dist + i], -4.0) << "pad clobbered";
            }
          }
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(DispatchableLevels, FusedParityTest,
                         ::testing::ValuesIn(dispatchable_levels()),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

TEST(FusedBackendFacade, RegisteredAndPlanOblivious) {
  auto& registry = api::BackendRegistry::global();
  ASSERT_TRUE(registry.contains("fused"));

  // Two fixed plans of one size must produce identical results through the
  // façade — the backend lowers both to the same schedule.
  auto a = api::Planner().fixed(core::Plan::iterative(12)).backend("fused").plan();
  auto b = api::Planner()
               .fixed(core::Plan::balanced_binary(12, 4))
               .backend("fused")
               .plan();
  EXPECT_EQ(a.backend_name(), "fused");
  std::vector<double> in(a.size());
  util::Rng rng(31);
  for (auto& v : in) v = rng.uniform(-1, 1);
  EXPECT_EQ(a.apply(in), b.apply(in));

  auto scalar = api::Planner().fixed(core::Plan::iterative(12)).plan();
  EXPECT_EQ(a.apply(in), scalar.apply(in));
}

TEST(FusedBackendFacade, ExecuteCopyMatchesGenerated) {
  auto fused_t = api::Planner().backend("fused").plan(13);
  auto scalar_t = api::Planner().fixed(fused_t.plan()).plan();
  std::vector<double> in(fused_t.size());
  util::Rng rng(41);
  for (auto& v : in) v = rng.uniform(-1, 1);
  std::vector<double> out_fused(fused_t.size());
  std::vector<double> out_scalar(fused_t.size());
  fused_t.execute_copy(in.data(), out_fused.data());
  scalar_t.execute_copy(in.data(), out_scalar.data());
  EXPECT_EQ(out_fused, out_scalar);
}

TEST(FusedBackendFacade, SuppliesItsOwnCostModelToThePlanner) {
  auto backend = api::BackendRegistry::global().create("fused");
  const auto model = backend->cost_model();
  ASSERT_TRUE(static_cast<bool>(model));
  // Pass-count pricing: beyond-L2 sizes cost strictly more per point than
  // in-cache ones, and two shapes of one size price identically.
  const double small = model(core::Plan::iterative(10));
  const double big = model(core::Plan::iterative(22));
  EXPECT_GT(big, small);
  EXPECT_EQ(model(core::Plan::iterative(14)),
            model(core::Plan::balanced_binary(14, 4)));
  // kEstimate planning through the hook works end to end.
  auto t = api::Planner().backend("fused").plan(16);
  EXPECT_TRUE(t.plan().valid());
}

TEST(FusedBackendFacade, ThreadsFanOutBatchChunks) {
  api::BackendOptions options;
  options.threads = 4;
  auto backend = api::BackendRegistry::global().create("fused", options);
  const core::Plan plan = core::Plan::balanced_binary(9, 4);
  const std::size_t count = 21;
  std::vector<double> batch(count * plan.size());
  util::Rng rng(53);
  for (auto& v : batch) v = rng.uniform(-1, 1);
  std::vector<double> reference = batch;
  backend->run_many(plan, batch.data(), count,
                    static_cast<std::ptrdiff_t>(plan.size()));
  for (std::size_t v = 0; v < count; ++v) {
    core::execute(plan, reference.data() + v * plan.size());
  }
  EXPECT_EQ(batch, reference);
}

}  // namespace
}  // namespace whtlab::simd
