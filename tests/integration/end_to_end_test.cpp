// Cross-module integration: small-scale versions of the paper's experiments,
// asserting the qualitative shapes the figures rely on.
#include <gtest/gtest.h>

#include <vector>

#include "cachesim/trace_runner.hpp"
#include "core/executor.hpp"
#include "core/plan_io.hpp"
#include "core/verify.hpp"
#include "model/combined_model.hpp"
#include "model/instruction_model.hpp"
#include "perf/events.hpp"
#include "search/dp_search.hpp"
#include "search/sampler.hpp"
#include "stats/correlation.hpp"
#include "stats/descriptive.hpp"
#include "stats/grid_opt.hpp"
#include "stats/pruning.hpp"
#include "util/rng.hpp"

namespace whtlab {
namespace {

// Shared sampled population for the in-cache size (kept small for test
// runtime; the bench binaries run the full-size experiment).
struct Population {
  std::vector<core::Plan> plans;
  std::vector<double> cycles;
  std::vector<double> instructions;
  std::vector<double> misses;
};

Population sample_population(int n, int count, std::uint64_t seed) {
  Population pop;
  util::Rng rng(seed);
  search::RecursiveSplitSampler sampler(core::kMaxUnrolled);
  perf::EventConfig config;
  config.measure.repetitions = 5;
  config.measure.warmup = 1;
  for (int i = 0; i < count; ++i) {
    core::Plan plan = sampler.sample(n, rng);
    const auto events = perf::collect_events(plan, config);
    pop.cycles.push_back(events.cycles);
    pop.instructions.push_back(events.instructions);
    pop.misses.push_back(static_cast<double>(events.l1_misses));
    pop.plans.push_back(std::move(plan));
  }
  return pop;
}

TEST(Integration, InstructionCountCorrelatesWithRuntimeInCache) {
  // The paper's headline for in-cache sizes (rho = 0.96 at n = 9 for them).
  // With measurement noise on a shared machine we demand rho > 0.6 — far
  // above what an uncorrelated model would give, far below cherry-picking.
  const auto pop = sample_population(9, 120, 42);
  const double rho = stats::pearson(pop.instructions, pop.cycles);
  EXPECT_GT(rho, 0.6);
}

TEST(Integration, ModelValuesAreDeterministicOverPopulation) {
  const auto a = sample_population(8, 10, 7);
  util::Rng rng(7);
  search::RecursiveSplitSampler sampler(core::kMaxUnrolled);
  for (std::size_t i = 0; i < a.plans.size(); ++i) {
    const core::Plan replay = sampler.sample(8, rng);
    EXPECT_EQ(replay, a.plans[i]);
    EXPECT_DOUBLE_EQ(model::instruction_count(replay), a.instructions[i]);
  }
}

TEST(Integration, CombinedModelAtLeastAsGoodAsComponents) {
  // Out-of-L1 size scaled down: use a small simulated cache so misses vary
  // across plans even at n = 12 (4096 elements vs 512-element cache).
  const int n = 12;
  util::Rng rng(9);
  search::RecursiveSplitSampler sampler(core::kMaxUnrolled);
  std::vector<double> cycles;
  std::vector<double> instructions;
  std::vector<double> misses;
  model::CacheModelConfig small_cache{512, 8};
  perf::EventConfig config;
  config.measure.repetitions = 5;
  for (int i = 0; i < 80; ++i) {
    const core::Plan plan = sampler.sample(n, rng);
    const auto events = perf::collect_events(plan, config);
    cycles.push_back(events.cycles);
    instructions.push_back(events.instructions);
    misses.push_back(
        static_cast<double>(model::direct_mapped_misses(plan, small_cache)));
  }
  const auto grid = stats::correlation_grid(instructions, misses, cycles);
  EXPECT_GE(grid.best_rho, stats::pearson(instructions, cycles) - 1e-12);
  EXPECT_GE(grid.best_rho, stats::pearson(misses, cycles) - 1e-12);
}

TEST(Integration, DpBestBeatsCanonicalAtModerateSize) {
  // Figure 1's premise, in miniature: the DP-tuned plan is at least as fast
  // as the canonical algorithms (allowing 10% timing noise).
  const int n = 12;
  perf::MeasureOptions measure;
  measure.repetitions = 7;
  search::DpOptions options;
  options.max_parts = 2;
  const auto result = search::dp_search(
      n,
      [&measure](const core::Plan& p) {
        return perf::measure_plan(p, measure).cycles();
      },
      options);
  const double best = perf::measure_plan(result.plan, measure).cycles();
  const double iter = perf::measure_plan(core::Plan::iterative(n), measure).cycles();
  const double right =
      perf::measure_plan(core::Plan::right_recursive(n), measure).cycles();
  EXPECT_LT(best, 1.1 * iter);
  EXPECT_LT(best, 1.1 * right);
  EXPECT_LT(core::verify_plan(result.plan), 1e-9);  // and it is still correct
}

TEST(Integration, PruningCurveOnRealPopulation) {
  const auto pop = sample_population(9, 150, 77);
  const auto curve = stats::pruning_curve(pop.instructions, pop.cycles, 0.10);
  // Limit behaviour from the paper: the final value equals the fraction of
  // plans outside the top decile.
  EXPECT_NEAR(curve.outside_fraction.back(), 0.9, 0.02);
  // Pruning must help: at the 25% threshold point the kept set should be
  // enriched in good plans relative to the population base rate.
  const std::size_t quarter = curve.outside_fraction.size() / 4;
  EXPECT_LT(curve.outside_fraction[quarter], 0.9);
}

TEST(Integration, EventCountsConsistentAcrossSubsystems) {
  // One plan, all measurement paths: interpreter counts == model, simulator
  // accesses == interpreter loads+stores, executor output == reference.
  const core::Plan plan =
      core::parse_plan("split[small[4],split[small[2],small[3]],small[1]]");
  const auto ops = core::count_ops(plan);
  EXPECT_DOUBLE_EQ(core::InstructionWeights{}.instructions(ops),
                   model::instruction_count(plan));
  const auto trace =
      cachesim::simulate_plan(plan, cachesim::CacheConfig::opteron_l1());
  EXPECT_EQ(trace.accesses, ops.accesses());
  EXPECT_LT(core::verify_plan(plan), 1e-9);
}

TEST(Integration, MissesIdenticalAcrossModelAndSimulatorOnSharedGeometry) {
  util::Rng rng(5);
  search::RecursiveSplitSampler sampler(core::kMaxUnrolled);
  const model::CacheModelConfig model_cfg{1024, 8};
  const auto sim_cfg = cachesim::CacheConfig::direct_mapped(128, 64);
  for (int i = 0; i < 5; ++i) {
    const auto plan = sampler.sample(13, rng);
    EXPECT_EQ(model::direct_mapped_misses(plan, model_cfg),
              cachesim::simulate_plan(plan, sim_cfg).l1_misses)
        << plan.to_string();
  }
}

}  // namespace
}  // namespace whtlab
