// Compile-and-use check for the umbrella header.
#include "whtlab.hpp"

#include <gtest/gtest.h>

namespace whtlab {
namespace {

TEST(Umbrella, EverySubsystemReachable) {
  const core::Plan plan = core::parse_plan("split[small[2],small[2]]");
  util::AlignedBuffer x(plan.size());
  x.fill(1.0);
  core::execute(plan, x.data());
  EXPECT_EQ(x[0], 16.0);

  EXPECT_GT(model::instruction_count(plan), 0.0);
  EXPECT_EQ(model::direct_mapped_misses(plan, {1024, 8}), 2u);
  EXPECT_EQ(cachesim::simulate_plan(plan, cachesim::CacheConfig::opteron_l1())
                .l1_misses,
            2u);

  search::PlanSpace space(4, 4);
  EXPECT_TRUE(space.count(4).fits_u64());

  const std::vector<double> xs{1, 2, 3, 4};
  EXPECT_NEAR(stats::pearson(xs, xs), 1.0, 1e-12);
  EXPECT_GT(perf::cycles_per_second(), 0.0);
}

}  // namespace
}  // namespace whtlab
