#include "search/local_search.hpp"

#include <gtest/gtest.h>

#include "core/verify.hpp"
#include "model/instruction_model.hpp"
#include "search/dp_search.hpp"
#include "search/sampler.hpp"
#include "util/rng.hpp"

namespace whtlab::search {
namespace {

TEST(MutatePlan, PreservesSizeAndValidity) {
  util::Rng rng(1);
  RecursiveSplitSampler sampler(core::kMaxUnrolled);
  for (int n : {4, 9, 14}) {
    core::Plan plan = sampler.sample(n, rng);
    for (int step = 0; step < 25; ++step) {
      plan = mutate_plan(plan, core::kMaxUnrolled, rng);
      ASSERT_TRUE(plan.valid());
      ASSERT_EQ(plan.log2_size(), n);
      ASSERT_LE(plan.max_leaf_log2(), core::kMaxUnrolled);
    }
    EXPECT_LT(core::verify_plan(plan), 1e-8);  // still the right transform
  }
}

TEST(MutatePlan, RespectsLeafLimit) {
  util::Rng rng(2);
  RecursiveSplitSampler sampler(2);
  core::Plan plan = sampler.sample(8, rng);
  for (int step = 0; step < 50; ++step) {
    plan = mutate_plan(plan, 2, rng);
    ASSERT_LE(plan.max_leaf_log2(), 2);
  }
}

TEST(MutatePlan, EventuallyChangesThePlan) {
  util::Rng rng(3);
  RecursiveSplitSampler sampler(core::kMaxUnrolled);
  const core::Plan original = sampler.sample(10, rng);
  int changed = 0;
  for (int step = 0; step < 20; ++step) {
    if (mutate_plan(original, core::kMaxUnrolled, rng) != original) ++changed;
  }
  EXPECT_GT(changed, 10);
}

TEST(MutatePlan, LeafPlanCanBeMutated) {
  util::Rng rng(4);
  const core::Plan leaf = core::Plan::small(6);
  // The only node is the root; mutation resamples the whole plan.
  bool saw_split = false;
  for (int step = 0; step < 50; ++step) {
    if (mutate_plan(leaf, core::kMaxUnrolled, rng).leaf_count() > 1) {
      saw_split = true;
      break;
    }
  }
  EXPECT_TRUE(saw_split);
}

TEST(Anneal, ImprovesOnRandomStart) {
  const auto cost = [](const core::Plan& p) {
    return model::instruction_count(p);
  };
  util::Rng rng(5);
  AnnealOptions options;
  options.iterations = 400;
  const auto result = anneal_search(12, cost, rng, options);
  // Must beat the average random plan comfortably: compare with a fresh
  // random sample's mean cost.
  RecursiveSplitSampler sampler(core::kMaxUnrolled);
  double total = 0.0;
  const int probes = 50;
  for (int i = 0; i < probes; ++i) total += cost(sampler.sample(12, rng));
  EXPECT_LT(result.best_cost, 0.8 * total / probes);
  EXPECT_EQ(result.best.log2_size(), 12);
  EXPECT_GT(result.evaluations, 400u);
}

TEST(Anneal, ApproachesDpOptimumOnDecomposableCost) {
  const auto cost = [](const core::Plan& p) {
    return model::instruction_count(p);
  };
  const auto dp = dp_search(8, cost);
  util::Rng rng(6);
  AnnealOptions options;
  options.iterations = 1500;
  const auto result = anneal_search(8, cost, rng, options);
  // DP is globally optimal for this cost; annealing should land within 10%.
  EXPECT_LE(dp.cost, result.best_cost);
  EXPECT_LT(result.best_cost, 1.10 * dp.cost);
}

TEST(Anneal, ZeroTemperatureIsGreedy) {
  const auto cost = [](const core::Plan& p) {
    return model::instruction_count(p);
  };
  util::Rng rng(7);
  AnnealOptions options;
  options.iterations = 200;
  options.initial_temperature = 0.0;
  const auto result = anneal_search(10, cost, rng, options);
  EXPECT_GT(result.evaluations, 0u);
  EXPECT_EQ(result.best.log2_size(), 10);
}

TEST(Anneal, Validation) {
  util::Rng rng(8);
  EXPECT_THROW(anneal_search(5, nullptr, rng), std::invalid_argument);
  AnnealOptions bad;
  bad.iterations = 0;
  EXPECT_THROW(anneal_search(5, [](const core::Plan&) { return 1.0; }, rng, bad),
               std::invalid_argument);
  AnnealOptions bad_slack;
  bad_slack.accept_cost = [](const core::Plan&) { return 1.0; };
  bad_slack.accept_filter_slack = 0.5;
  EXPECT_THROW(
      anneal_search(5, [](const core::Plan&) { return 1.0; }, rng, bad_slack),
      std::invalid_argument);
}

TEST(Anneal, MeasuredAcceptanceDrivesTheWalk) {
  // Measured mode: accept_cost decides, the model only screens.  With both
  // metrics equal the walk must still optimise, and the bookkeeping must
  // show measurements happening and best_cost in accept_cost units.
  const auto cost = [](const core::Plan& p) {
    return model::instruction_count(p);
  };
  util::Rng rng(9);
  AnnealOptions options;
  options.iterations = 300;
  options.accept_cost = cost;
  const auto result = anneal_search(10, cost, rng, options);
  EXPECT_EQ(result.best.log2_size(), 10);
  EXPECT_GT(result.measured, 0u);
  EXPECT_DOUBLE_EQ(result.best_cost, cost(result.best))
      << "best_cost must be the accept metric of the best plan";
  // Every proposal either passed the filter (and was measured) or was
  // filtered; plus the one start-plan measurement.
  EXPECT_LE(result.measured + result.filtered, 301u);
}

TEST(Anneal, ModelFilterSkipsExpensiveMeasurements) {
  const auto cost = [](const core::Plan& p) {
    return model::instruction_count(p);
  };
  util::Rng rng(10);
  AnnealOptions options;
  options.iterations = 400;
  options.accept_cost = cost;
  options.accept_filter_slack = 1.0;  // strict: any model regression skipped
  const auto result = anneal_search(12, cost, rng, options);
  EXPECT_GT(result.filtered, 0u)
      << "random mutations regress often; a strict filter must catch some";
  EXPECT_LT(result.measured, 401u)
      << "filtered proposals must not be measured";
  EXPECT_EQ(result.measured + result.filtered, 401u)
      << "every proposal (plus the start) is either measured or filtered";
}

}  // namespace
}  // namespace whtlab::search
