#include "search/pruned_search.hpp"

#include <gtest/gtest.h>

#include "model/instruction_model.hpp"
#include "util/rng.hpp"

namespace whtlab::search {
namespace {

ModelFn instruction_model() {
  return [](const core::Plan& plan) { return model::instruction_count(plan); };
}

PrunedSearchOptions fast_options() {
  PrunedSearchOptions options;
  options.candidates = 40;
  options.keep_fraction = 0.25;
  options.measure.repetitions = 3;
  options.measure.warmup = 1;
  return options;
}

TEST(PrunedSearch, MeasuresOnlyTheKeptFraction) {
  util::Rng rng(1);
  const auto result =
      model_pruned_search(8, instruction_model(), rng, fast_options());
  EXPECT_EQ(result.measured, 10u);
  EXPECT_EQ(result.pruned, 30u);
  EXPECT_TRUE(result.best_plan.valid());
  EXPECT_EQ(result.best_plan.log2_size(), 8);
  EXPECT_GT(result.best_cycles, 0.0);
  EXPECT_FALSE(result.audited);
}

TEST(PrunedSearch, KeptPlansRespectTheThreshold) {
  util::Rng rng(2);
  const auto result =
      model_pruned_search(9, instruction_model(), rng, fast_options());
  EXPECT_LE(model::instruction_count(result.best_plan),
            result.model_threshold);
}

TEST(PrunedSearch, AuditNeverBeatsPrunedByDefinition) {
  util::Rng rng(3);
  const auto result = model_pruned_search(8, instruction_model(), rng,
                                          fast_options(), /*audit=*/true);
  EXPECT_TRUE(result.audited);
  EXPECT_LE(result.audit_best_cycles, result.best_cycles);
}

TEST(PrunedSearch, PruningFindsNearBestPlan) {
  // The paper's claim in action: keeping the best quarter by model value
  // should land within a modest factor of the full-search winner.  Timing
  // noise on shared machines makes this statistical; a generous factor keeps
  // it robust while still failing if pruning were broken (random keep would
  // be ~2-4x off at this size).
  util::Rng rng(4);
  PrunedSearchOptions options = fast_options();
  options.candidates = 60;
  const auto result =
      model_pruned_search(9, instruction_model(), rng, options, /*audit=*/true);
  EXPECT_LT(result.best_cycles, 1.6 * result.audit_best_cycles);
}

TEST(PrunedSearch, KeepEverythingEqualsFullSearch) {
  util::Rng rng(5);
  PrunedSearchOptions options = fast_options();
  options.keep_fraction = 1.0;
  const auto result =
      model_pruned_search(7, instruction_model(), rng, options, /*audit=*/true);
  EXPECT_EQ(result.pruned, 0u);
  EXPECT_DOUBLE_EQ(result.best_cycles, result.audit_best_cycles);
}

TEST(PrunedSearch, ArgumentValidation) {
  util::Rng rng(6);
  PrunedSearchOptions bad = fast_options();
  bad.candidates = 0;
  EXPECT_THROW(model_pruned_search(6, instruction_model(), rng, bad),
               std::invalid_argument);
  bad = fast_options();
  bad.keep_fraction = 0.0;
  EXPECT_THROW(model_pruned_search(6, instruction_model(), rng, bad),
               std::invalid_argument);
  EXPECT_THROW(model_pruned_search(6, nullptr, rng, fast_options()),
               std::invalid_argument);
}

}  // namespace
}  // namespace whtlab::search
