// Counting recurrence vs direct composition-product enumeration, and the
// paper's O(7^n) growth remark.
#include "search/space.hpp"

#include <gtest/gtest.h>

#include "search/enumerate.hpp"
#include "util/compositions.hpp"

namespace whtlab::search {
namespace {

// Direct count by the defining recursion (exponential; small n only).
util::BigInt brute_count(int n, int max_leaf) {
  util::BigInt total(n <= max_leaf ? 1 : 0);
  if (n >= 2) {
    util::for_each_composition(n, 2, [&](const std::vector<int>& parts) {
      util::BigInt product(1);
      for (int part : parts) product *= brute_count(part, max_leaf);
      total += product;
    });
  }
  return total;
}

TEST(PlanSpace, UnitLeafCountsMatchHandValues) {
  // max_leaf = 1: a = 1, 1, 3, 11, 45, ... (every node splits to size-1
  // leaves; the classic WHT-space sequence).
  PlanSpace space(8, 1);
  EXPECT_EQ(space.count(1).to_string(), "1");
  EXPECT_EQ(space.count(2).to_string(), "1");
  EXPECT_EQ(space.count(3).to_string(), "3");
  EXPECT_EQ(space.count(4).to_string(), "11");
  EXPECT_EQ(space.count(5).to_string(), "45");
}

TEST(PlanSpace, MatchesBruteForceAcrossLeafLimits) {
  for (int max_leaf : {1, 2, 3, 4}) {
    PlanSpace space(9, max_leaf);
    for (int n = 1; n <= 9; ++n) {
      EXPECT_EQ(space.count(n), brute_count(n, max_leaf))
          << "n=" << n << " L=" << max_leaf;
    }
  }
}

TEST(PlanSpace, MatchesEnumerationExactly) {
  for (int max_leaf : {1, 3, 4}) {
    PlanSpace space(7, max_leaf);
    for (int n = 1; n <= 7; ++n) {
      const auto plans = enumerate_plans(n, max_leaf);
      ASSERT_TRUE(space.count(n).fits_u64());
      EXPECT_EQ(plans.size(), space.count(n).value64())
          << "n=" << n << " L=" << max_leaf;
    }
  }
}

TEST(PlanSpace, GrowthApproachesSpaceConstant) {
  // Section 2: "approximately O(7^n) different algorithms".  The growth
  // ratio a(n+1)/a(n) must stabilize in the ~5-9 range and be monotone
  // enough to look geometric.
  PlanSpace space(40, core::kMaxUnrolled);
  const double r30 = space.growth_ratio(30);
  const double r39 = space.growth_ratio(39);
  EXPECT_GT(r30, 5.0);
  EXPECT_LT(r30, 9.0);
  EXPECT_NEAR(r30, r39, 0.2);  // converged
}

TEST(PlanSpace, CountsExceedUint64ForLargeN) {
  PlanSpace space(40, core::kMaxUnrolled);
  EXPECT_FALSE(space.count(40).fits_u64());
  EXPECT_GT(space.count(40).to_double(), 1e25);
}

TEST(PlanSpace, SequenceCountIdentity) {
  // s(n) = 2 a(n) - leaf(n).
  PlanSpace space(10, 4);
  for (int n = 1; n <= 10; ++n) {
    util::BigInt expected = space.count(n) + space.count(n);
    if (n <= 4) expected -= util::BigInt(1);
    EXPECT_EQ(space.sequence_count(n), expected) << n;
  }
}

TEST(PlanSpace, LargerLeafLimitNeverShrinksSpace) {
  PlanSpace narrow(12, 2);
  PlanSpace wide(12, 6);
  for (int n = 1; n <= 12; ++n) {
    EXPECT_GE(wide.count(n), narrow.count(n)) << n;
  }
}

TEST(PlanSpace, ArgumentValidation) {
  EXPECT_THROW(PlanSpace(0, 1), std::invalid_argument);
  EXPECT_THROW(PlanSpace(5, 0), std::invalid_argument);
  EXPECT_THROW(PlanSpace(5, core::kMaxUnrolled + 1), std::invalid_argument);
  PlanSpace space(5, 2);
  EXPECT_THROW(space.count(0), std::out_of_range);
  EXPECT_THROW(space.count(6), std::out_of_range);
}

}  // namespace
}  // namespace whtlab::search
