#include "search/sampler.hpp"

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "core/plan_io.hpp"
#include "search/enumerate.hpp"
#include "search/space.hpp"
#include "util/rng.hpp"

namespace whtlab::search {
namespace {

TEST(RecursiveSplitSampler, ProducesValidPlansOfRequestedSize) {
  RecursiveSplitSampler sampler(core::kMaxUnrolled);
  util::Rng rng(1);
  for (int n : {1, 2, 5, 9, 18, 26}) {
    for (int trial = 0; trial < 20; ++trial) {
      const auto plan = sampler.sample(n, rng);
      EXPECT_EQ(plan.log2_size(), n);
      EXPECT_LE(plan.max_leaf_log2(), core::kMaxUnrolled);
    }
  }
}

TEST(RecursiveSplitSampler, RespectsLeafLimit) {
  RecursiveSplitSampler sampler(2);
  util::Rng rng(2);
  for (int trial = 0; trial < 50; ++trial) {
    EXPECT_LE(sampler.sample(10, rng).max_leaf_log2(), 2);
  }
}

TEST(RecursiveSplitSampler, SizeOneIsAlwaysTheLeaf) {
  RecursiveSplitSampler sampler(4);
  util::Rng rng(3);
  EXPECT_EQ(sampler.sample(1, rng).to_string(), "small[1]");
}

TEST(RecursiveSplitSampler, DeterministicGivenSeed) {
  RecursiveSplitSampler sampler(core::kMaxUnrolled);
  util::Rng a(12345);
  util::Rng b(12345);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(sampler.sample(12, a), sampler.sample(12, b));
  }
}

TEST(RecursiveSplitSampler, NodeChoicesAreUniform) {
  // At n=3, max_leaf=3 the root options are: leaf, [1,2], [2,1], [1,1,1],
  // each with probability 1/4.  A size-2 child then independently picks
  // leaf or split with probability 1/2, giving 6 plan shapes in total:
  // the leaf and [1,1,1] at 1/4 each, and the four [1,2]/[2,1] variants at
  // 1/8 each.
  RecursiveSplitSampler sampler(3);
  util::Rng rng(99);
  std::map<std::string, int> counts;
  const int draws = 40000;
  for (int i = 0; i < draws; ++i) {
    ++counts[sampler.sample(3, rng).to_string()];
  }
  ASSERT_EQ(counts.size(), 6u);
  for (const auto& [text, count] : counts) {
    const bool quarter = text == "small[3]" ||
                         text == "split[small[1],small[1],small[1]]";
    EXPECT_NEAR(static_cast<double>(count) / draws, quarter ? 0.25 : 0.125,
                0.01)
        << text;
  }
}

TEST(RecursiveSplitSampler, CoversTheWholeSpace) {
  // Every plan of the n=4, max_leaf=2 space should eventually appear.
  const auto all = enumerate_plans(4, 2);
  RecursiveSplitSampler sampler(2);
  util::Rng rng(7);
  std::map<std::string, int> seen;
  for (int i = 0; i < 30000; ++i) {
    ++seen[sampler.sample(4, rng).to_string()];
  }
  EXPECT_EQ(seen.size(), all.size());
}

TEST(UniformPlanSampler, ProducesValidPlans) {
  PlanSpace space(14, core::kMaxUnrolled);
  UniformPlanSampler sampler(space);
  util::Rng rng(4);
  for (int n : {1, 4, 9, 14}) {
    for (int trial = 0; trial < 10; ++trial) {
      const auto plan = sampler.sample(n, rng);
      EXPECT_EQ(plan.log2_size(), n);
    }
  }
}

TEST(UniformPlanSampler, IsExactlyUniformChiSquare) {
  // n=4, max_leaf=2: a(4) plans, each expected draws/a(4) times.
  const int n = 4;
  const int max_leaf = 2;
  PlanSpace space(n, max_leaf);
  ASSERT_TRUE(space.count(n).fits_u64());
  const auto total_plans = space.count(n).value64();
  UniformPlanSampler sampler(space);
  util::Rng rng(11);
  std::map<std::string, int> counts;
  const int draws = 60000;
  for (int i = 0; i < draws; ++i) {
    ++counts[sampler.sample(n, rng).to_string()];
  }
  ASSERT_EQ(counts.size(), total_plans);
  const double expected = static_cast<double>(draws) /
                          static_cast<double>(total_plans);
  double chi2 = 0.0;
  for (const auto& [text, count] : counts) {
    const double d = count - expected;
    chi2 += d * d / expected;
  }
  // dof = total_plans - 1; for the 11-plan space the 99.9% cut is ~29.6.
  EXPECT_LT(chi2, 29.6) << "plans=" << total_plans;
}

TEST(UniformPlanSampler, DiffersFromRecursiveSplitModel) {
  // Under RSU the leaf small[3] has probability 1/4 at n=3,L=3; under the
  // uniform model it has probability 1/a(3) = 1/6.  Distinguish the models.
  const int n = 3;
  PlanSpace space(n, 3);
  UniformPlanSampler uniform(space);
  util::Rng rng(13);
  int leaf_draws = 0;
  const int draws = 30000;
  for (int i = 0; i < draws; ++i) {
    if (uniform.sample(n, rng).leaf_count() == 1) ++leaf_draws;
  }
  EXPECT_NEAR(static_cast<double>(leaf_draws) / draws, 1.0 / 6.0, 0.01);
}

TEST(Samplers, ArgumentValidation) {
  EXPECT_THROW(RecursiveSplitSampler(0), std::invalid_argument);
  RecursiveSplitSampler sampler(2);
  util::Rng rng(1);
  EXPECT_THROW(sampler.sample(0, rng), std::invalid_argument);
  PlanSpace space(5, 2);
  UniformPlanSampler uniform(space);
  EXPECT_THROW(uniform.sample(6, rng), std::invalid_argument);
}

}  // namespace
}  // namespace whtlab::search
