#include "search/dp_search.hpp"

#include <gtest/gtest.h>

#include "model/combined_model.hpp"
#include "model/instruction_model.hpp"
#include "search/enumerate.hpp"

namespace whtlab::search {
namespace {

double model_cost(const core::Plan& plan) {
  return model::instruction_count(plan);
}

TEST(DpSearch, FindsGlobalOptimumOfDecomposableCost) {
  // The instruction model is exactly decomposable over subtrees (child cost
  // enters with positive multiplier), so DP with all compositions must find
  // the true global minimum — cross-check against exhaustive search.
  DpOptions options;
  options.max_leaf = 4;
  for (int n = 1; n <= 7; ++n) {
    const auto result = dp_search(n, model_cost, options);
    double best = 1e300;
    for (const auto& plan : enumerate_plans(n, options.max_leaf)) {
      best = std::min(best, model_cost(plan));
    }
    EXPECT_DOUBLE_EQ(result.cost, best) << n;
    EXPECT_DOUBLE_EQ(model_cost(result.plan), result.cost);
  }
}

TEST(DpSearch, BestBySizeIsInternallyConsistent) {
  const auto result = dp_search(10, model_cost);
  for (int m = 1; m <= 10; ++m) {
    const auto& plan = result.best_by_size[static_cast<std::size_t>(m)];
    EXPECT_EQ(plan.log2_size(), m);
    EXPECT_DOUBLE_EQ(model_cost(plan), result.cost_by_size[static_cast<std::size_t>(m)]);
  }
  // Cost per size must be non-decreasing in n (bigger transform, more work).
  for (int m = 2; m <= 10; ++m) {
    EXPECT_GT(result.cost_by_size[static_cast<std::size_t>(m)],
              result.cost_by_size[static_cast<std::size_t>(m - 1)]);
  }
}

TEST(DpSearch, BeatsCanonicalPlansOnTheModel) {
  // The tuned plan uses larger base cases and must beat all three canonical
  // algorithms on modeled instructions (the Figure 2 "best" behaviour).
  const auto result = dp_search(16, model_cost);
  EXPECT_LT(result.cost, model_cost(core::Plan::iterative(16)));
  EXPECT_LT(result.cost, model_cost(core::Plan::right_recursive(16)));
  EXPECT_LT(result.cost, model_cost(core::Plan::left_recursive(16)));
}

TEST(DpSearch, MaxPartsRestrictsCandidates) {
  const auto full = dp_search(8, model_cost);
  DpOptions binary;
  binary.max_parts = 2;
  const auto restricted = dp_search(8, model_cost, binary);
  EXPECT_LT(restricted.evaluations, full.evaluations);
  EXPECT_GE(restricted.cost, full.cost);  // restriction can't improve
  // Every split in the witness is binary.
  std::function<void(const core::PlanNode&)> check = [&](const core::PlanNode& node) {
    if (node.kind == core::NodeKind::kSplit) {
      EXPECT_LE(node.children.size(), 2u);
      for (const auto& child : node.children) check(*child);
    }
  };
  check(restricted.plan.root());
}

TEST(DpSearch, CombinedModelCostWorksToo) {
  model::CombinedModel combined;
  combined.cache.cache_elements = 512;  // tiny cache: misses matter
  const auto result = dp_search(
      12, [&combined](const core::Plan& p) { return combined(p); });
  EXPECT_EQ(result.plan.log2_size(), 12);
  EXPECT_GT(result.cost, 0.0);
}

TEST(DpSearch, EvaluationBudgetIsSumOfCandidates) {
  DpOptions options;
  options.max_leaf = 1;  // leaf only admissible at m=1
  const auto result = dp_search(5, model_cost, options);
  // candidates: m=1: 1 leaf; m>=2: 2^(m-1)-1 compositions.
  // 1 + 1 + 3 + 7 + 15 = 27.
  EXPECT_EQ(result.evaluations, 27u);
}

TEST(DpSearch, ArgumentValidation) {
  EXPECT_THROW(dp_search(0, model_cost), std::invalid_argument);
  EXPECT_THROW(dp_search(5, nullptr), std::invalid_argument);
  DpOptions bad;
  bad.max_leaf = 99;
  EXPECT_THROW(dp_search(5, model_cost, bad), std::invalid_argument);
}

}  // namespace
}  // namespace whtlab::search
