#include "search/enumerate.hpp"

#include <gtest/gtest.h>

#include <set>

#include "search/space.hpp"

namespace whtlab::search {
namespace {

TEST(Enumerate, SizeOne) {
  const auto plans = enumerate_plans(1, 4);
  ASSERT_EQ(plans.size(), 1u);
  EXPECT_EQ(plans[0].to_string(), "small[1]");
}

TEST(Enumerate, SizeTwoWithLeaf) {
  const auto plans = enumerate_plans(2, 2);
  ASSERT_EQ(plans.size(), 2u);
  EXPECT_EQ(plans[0].to_string(), "small[2]");
  EXPECT_EQ(plans[1].to_string(), "split[small[1],small[1]]");
}

TEST(Enumerate, SizeTwoWithoutLeaf) {
  const auto plans = enumerate_plans(2, 1);
  ASSERT_EQ(plans.size(), 1u);
  EXPECT_EQ(plans[0].to_string(), "split[small[1],small[1]]");
}

TEST(Enumerate, AllPlansDistinctAndRightSized) {
  for (int n = 1; n <= 7; ++n) {
    const auto plans = enumerate_plans(n, 3);
    std::set<std::string> texts;
    for (const auto& plan : plans) {
      EXPECT_EQ(plan.log2_size(), n);
      EXPECT_LE(plan.max_leaf_log2(), 3);
      EXPECT_TRUE(texts.insert(plan.to_string()).second)
          << "duplicate: " << plan.to_string();
    }
  }
}

TEST(Enumerate, CountsMatchRecurrence) {
  PlanSpace space(8, core::kMaxUnrolled);
  for (int n = 1; n <= 8; ++n) {
    EXPECT_EQ(enumerate_plans(n, core::kMaxUnrolled).size(),
              space.count(n).value64())
        << n;
  }
}

TEST(Enumerate, ForEachEarlyStop) {
  std::uint64_t visited = for_each_plan(6, 3, [count = 0](const core::Plan&) mutable {
    return ++count < 5;
  });
  EXPECT_EQ(visited, 5u);
}

TEST(Enumerate, ForEachFullTraversal) {
  PlanSpace space(6, 3);
  std::uint64_t total = 0;
  for_each_plan(6, 3, [&total](const core::Plan&) {
    ++total;
    return true;
  });
  EXPECT_EQ(total, space.count(6).value64());
}

TEST(Enumerate, ArgumentValidation) {
  EXPECT_THROW(enumerate_plans(0, 2), std::invalid_argument);
  EXPECT_THROW(enumerate_plans(13, 2), std::invalid_argument);
  EXPECT_THROW(enumerate_plans(4, 0), std::invalid_argument);
}

}  // namespace
}  // namespace whtlab::search
