#include "search/exhaustive.hpp"

#include <gtest/gtest.h>

#include "model/instruction_model.hpp"
#include "search/dp_search.hpp"
#include "search/space.hpp"

namespace whtlab::search {
namespace {

double model_cost(const core::Plan& plan) {
  return model::instruction_count(plan);
}

TEST(Exhaustive, EvaluatesTheWholeSpace) {
  PlanSpace space(6, 4);
  const auto result = exhaustive_search(6, model_cost, 4);
  EXPECT_EQ(result.evaluated, space.count(6).value64());
  EXPECT_LE(result.best_cost, result.worst_cost);
  EXPECT_EQ(result.best.log2_size(), 6);
  EXPECT_EQ(result.worst.log2_size(), 6);
}

TEST(Exhaustive, AgreesWithDpOnDecomposableCost) {
  for (int n = 2; n <= 7; ++n) {
    const auto exhaustive = exhaustive_search(n, model_cost, 4);
    DpOptions options;
    options.max_leaf = 4;
    const auto dp = dp_search(n, model_cost, options);
    EXPECT_DOUBLE_EQ(exhaustive.best_cost, dp.cost) << n;
  }
}

TEST(Exhaustive, FindsContextSensitiveOptimumDpMisses) {
  // A synthetic non-decomposable cost: penalize subplans that *look* cheap
  // in isolation when used at the top level.  DP (which reuses the best
  // subplan everywhere) can be beaten; exhaustive cannot.
  const auto weird_cost = [](const core::Plan& plan) {
    double cost = model_cost(plan);
    // Penalty if the FIRST top-level child is the subtree DP would pick
    // (a leaf), rewarding plans whose top split is deliberately "odd".
    if (plan.root().kind == core::NodeKind::kSplit &&
        plan.root().children.front()->kind == core::NodeKind::kSmall) {
      cost *= 1.5;
    }
    return cost;
  };
  const auto exhaustive = exhaustive_search(5, weird_cost, 4);
  const auto dp = dp_search(5, weird_cost, DpOptions{.max_leaf = 4});
  EXPECT_LE(exhaustive.best_cost, dp.cost);
}

TEST(Exhaustive, SingletonSpace) {
  const auto result = exhaustive_search(1, model_cost, 1);
  EXPECT_EQ(result.evaluated, 1u);
  EXPECT_EQ(result.best.to_string(), "small[1]");
  EXPECT_DOUBLE_EQ(result.best_cost, result.worst_cost);
}

TEST(Exhaustive, NullCostThrows) {
  EXPECT_THROW(exhaustive_search(4, nullptr), std::invalid_argument);
}

}  // namespace
}  // namespace whtlab::search
