// CostCache threading through the searches: memoization must change how
// often the cost function runs, and nothing else — same winners, same
// costs, fewer evaluations.
#include "model/cost_cache.hpp"

#include <gtest/gtest.h>

#include "core/plan.hpp"
#include "model/combined_model.hpp"
#include "search/dp_search.hpp"
#include "search/local_search.hpp"
#include "search/pruned_search.hpp"
#include "util/rng.hpp"

namespace whtlab::model {
namespace {

/// A combined-model cost that counts its invocations.
struct CountingCost {
  CombinedModel model;
  std::uint64_t* calls;
  double operator()(const core::Plan& plan) const {
    ++*calls;
    return model(plan);
  }
};

TEST(CostCache, DpSameResultWithSubtreeMemoization) {
  // DP's candidate stream has no whole-plan duplicates (each composition
  // assembles a distinct tree), so its win is the *subtree* memo inside the
  // combined model: every candidate at size m re-uses the already-priced
  // winners of its parts.  Results must be identical either way.
  const int n = 12;
  // Small enough a cache that the miss recursion actually descends (spans
  // above 1024 elements), same geometry on both sides.
  CombinedModel plain_model;
  plain_model.cache = {1024, 8};
  search::DpOptions plain_options;
  plain_options.max_parts = 4;
  std::uint64_t plain_calls = 0;
  const auto plain = search::dp_search(
      n, CountingCost{plain_model, &plain_calls}, plain_options);

  CostCache cache;
  search::DpOptions cached_options = plain_options;
  cached_options.cost_cache = &cache;
  CombinedModel cached_model;
  cached_model.cache = {1024, 8};
  cached_model.cost_cache = &cache;
  std::uint64_t cached_calls = 0;
  const auto cached = search::dp_search(
      n, CountingCost{cached_model, &cached_calls}, cached_options);

  EXPECT_EQ(plain.plan, cached.plan);
  EXPECT_DOUBLE_EQ(plain.cost, cached.cost);
  EXPECT_LE(cached_calls, plain_calls);
  EXPECT_EQ(cached.evaluations, cached_calls);
  // The parts of every split candidate were priced as earlier winners.
  EXPECT_GT(cache.stats().subtree_hits, 0u);
}

TEST(CostCache, AnnealSameTrajectoryFewerEvaluations) {
  // Annealing is driven by (rng, accept decisions); costs are identical
  // either way, so the trajectory — and the winner — must be too.
  search::AnnealOptions options;
  options.iterations = 400;
  std::uint64_t plain_calls = 0;
  util::Rng plain_rng(42);
  const auto plain = search::anneal_search(
      10, CountingCost{{}, &plain_calls}, plain_rng, options);

  CostCache cache;
  search::AnnealOptions cached_options = options;
  cached_options.cost_cache = &cache;
  std::uint64_t cached_calls = 0;
  util::Rng cached_rng(42);
  const auto cached = search::anneal_search(
      10, CountingCost{{}, &cached_calls}, cached_rng, cached_options);

  EXPECT_EQ(plain.best, cached.best);
  EXPECT_DOUBLE_EQ(plain.best_cost, cached.best_cost);
  EXPECT_EQ(plain.accepted, cached.accepted);
  // Mutate/reject cycles revisit plans constantly; the memo must actually
  // absorb repeats (this is the whole point of threading it through).
  EXPECT_LT(cached_calls, plain_calls);
  EXPECT_GT(cache.stats().plan_hits, 0u);
}

TEST(CostCache, PrunedSearchSameRankingFewerModelCalls) {
  search::PrunedSearchOptions options;
  options.candidates = 150;
  options.keep_fraction = 0.2;
  // Deterministic stand-in for measurement so the test is noise-free.
  options.measure_fn = [](const core::Plan& plan) {
    return static_cast<double>(plan.node_count());
  };

  std::uint64_t plain_calls = 0;
  util::Rng plain_rng(7);
  const auto plain = search::model_pruned_search(
      10, CountingCost{{}, &plain_calls}, plain_rng, options);

  CostCache cache;
  search::PrunedSearchOptions cached_options = options;
  cached_options.cost_cache = &cache;
  std::uint64_t cached_calls = 0;
  util::Rng cached_rng(7);
  const auto cached = search::model_pruned_search(
      10, CountingCost{{}, &cached_calls}, cached_rng, cached_options);

  EXPECT_EQ(plain.best_plan, cached.best_plan);
  EXPECT_DOUBLE_EQ(plain.best_cycles, cached.best_cycles);
  EXPECT_DOUBLE_EQ(plain.model_threshold, cached.model_threshold);
  EXPECT_LE(cached_calls, plain_calls);
}

TEST(CostCache, StatsAndClear) {
  CostCache cache;
  EXPECT_FALSE(cache.lookup_plan("p"));
  cache.store_plan("p", 3.0);
  ASSERT_TRUE(cache.lookup_plan("p"));
  EXPECT_DOUBLE_EQ(*cache.lookup_plan("p"), 3.0);
  cache.store_subtree("s@0", 17);
  ASSERT_TRUE(cache.lookup_subtree("s@0"));
  EXPECT_EQ(*cache.lookup_subtree("s@0"), 17u);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().plan_hits, 2u);  // ASSERT + deref above
  EXPECT_EQ(cache.stats().plan_misses, 1u);
  EXPECT_EQ(cache.stats().subtree_hits, 2u);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().plan_hits, 0u);
}

}  // namespace
}  // namespace whtlab::model
