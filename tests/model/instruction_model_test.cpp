// The instruction model's defining invariant: it equals the weighted op
// count of the interpreter on every plan, while being computed in O(tree).
#include "model/instruction_model.hpp"

#include <gtest/gtest.h>

#include "core/instrumented.hpp"
#include "core/plan_io.hpp"
#include "search/enumerate.hpp"
#include "search/sampler.hpp"
#include "util/rng.hpp"

namespace whtlab::model {
namespace {

using core::InstructionWeights;
using core::Plan;

TEST(InstructionModel, LeafCostFormula) {
  InstructionWeights w;
  for (int k = 1; k <= core::kMaxUnrolled; ++k) {
    const double m = static_cast<double>(1 << k);
    EXPECT_DOUBLE_EQ(leaf_cost(k, w),
                     w.call + m * (w.load + w.store) + k * m * w.flop +
                         2.0 * m * w.index_op);
  }
  EXPECT_THROW(leaf_cost(0, w), std::invalid_argument);
  EXPECT_THROW(leaf_cost(core::kMaxUnrolled + 1, w), std::invalid_argument);
}

class ModelMatchesInterpreter : public ::testing::TestWithParam<int> {};

TEST_P(ModelMatchesInterpreter, OnEveryEnumeratedPlan) {
  const int n = GetParam();
  const InstructionWeights w;
  for (const auto& plan : search::enumerate_plans(n, 4)) {
    const double modeled = instruction_count(plan, w);
    const double counted = w.instructions(core::count_ops(plan));
    EXPECT_DOUBLE_EQ(modeled, counted) << plan.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(SizesOneToSix, ModelMatchesInterpreter,
                         ::testing::Range(1, 7));

TEST(InstructionModel, MatchesInterpreterOnRandomLargePlans) {
  const InstructionWeights w;
  util::Rng rng(17);
  search::RecursiveSplitSampler sampler(core::kMaxUnrolled);
  for (int n : {10, 14, 18}) {
    for (int trial = 0; trial < 6; ++trial) {
      const Plan plan = sampler.sample(n, rng);
      EXPECT_DOUBLE_EQ(instruction_count(plan, w),
                       w.instructions(core::count_ops(plan)))
          << plan.to_string();
    }
  }
}

TEST(InstructionModel, MatchesUnderNonDefaultWeights) {
  InstructionWeights w;
  w.load = 1.5;
  w.store = 2.0;
  w.flop = 0.5;
  w.index_op = 0.25;
  w.loop_outer = 10.0;
  w.loop_mid = 3.0;
  w.loop_inner = 1.0;
  w.call = 100.0;
  util::Rng rng(23);
  search::RecursiveSplitSampler sampler(core::kMaxUnrolled);
  const Plan plan = sampler.sample(12, rng);
  EXPECT_DOUBLE_EQ(instruction_count(plan, w),
                   w.instructions(core::count_ops(plan)));
}

TEST(InstructionModel, IterativeHasLowestCountAmongCanonical) {
  // Figure 2's premise: the iterative algorithm executes the fewest
  // instructions at every size.  (At n = 2 all canonical plans coincide.)
  for (int n = 3; n <= 20; ++n) {
    const double iter = instruction_count(Plan::iterative(n));
    const double right = instruction_count(Plan::right_recursive(n));
    const double left = instruction_count(Plan::left_recursive(n));
    EXPECT_LT(iter, right) << n;
    EXPECT_LT(iter, left) << n;
  }
}

TEST(InstructionModel, RightRecursiveBeatsLeftRecursive) {
  // TCS'06 analysis (quoted in the paper, Section 3): right recursive
  // executes fewer instructions than left recursive.
  for (int n = 3; n <= 20; ++n) {
    EXPECT_LT(instruction_count(Plan::right_recursive(n)),
              instruction_count(Plan::left_recursive(n)))
        << n;
  }
}

TEST(InstructionModel, LargerBaseCasesReduceCount) {
  // Unrolling removes loop/call overhead: radix-4 iterative beats radix-1.
  for (int n : {8, 12, 16, 20}) {
    EXPECT_LT(instruction_count(Plan::iterative_radix(n, 4)),
              instruction_count(Plan::iterative(n)))
        << n;
  }
}

TEST(InstructionModel, ScalesLinearlyWithLeadingMultiplicity) {
  // split[small[1], X] costs overhead + 2^1-multiplicity of X... check the
  // multiplicity helper directly.
  EXPECT_DOUBLE_EQ(child_multiplicity(10, 3), 128.0);
  EXPECT_DOUBLE_EQ(child_multiplicity(5, 5), 1.0);
}

TEST(InstructionModel, SplitOverheadMatchesHandComputation) {
  InstructionWeights w;
  // split of n=3 into [1,2]: N=8; factors apply last-to-first.
  // First the size-4 child at s=1: mult=2, R=2; then the size-2 child at
  // s=4: mult=4, R=1.
  const double expected = w.call +
                          (w.loop_outer + 2 * w.loop_mid + 2 * (w.loop_inner + w.index_op)) +
                          (w.loop_outer + 1 * w.loop_mid + 4 * (w.loop_inner + w.index_op));
  EXPECT_DOUBLE_EQ(split_overhead(3, {1, 2}, w), expected);
}

TEST(InstructionModel, OrderOfPartsMatters) {
  // [1,2] and [2,1] have different mid-loop totals; the model must see it.
  InstructionWeights w;
  w.loop_mid = 5.0;  // amplify
  const core::Plan a = core::parse_plan("split[small[1],small[2]]");
  const core::Plan b = core::parse_plan("split[small[2],small[1]]");
  EXPECT_NE(instruction_count(a, w), instruction_count(b, w));
}

}  // namespace
}  // namespace whtlab::model
