// Cross-cutting property sweeps over the models, parameterized over space
// configurations.  These pin down ordering/bounding relationships that every
// experiment implicitly relies on.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "model/cache_model.hpp"
#include "model/combined_model.hpp"
#include "model/instruction_model.hpp"
#include "model/space_stats.hpp"
#include "search/sampler.hpp"
#include "util/rng.hpp"

namespace whtlab::model {
namespace {

class SpaceSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SpaceSweep, SampledValuesLieBetweenTheExtremes) {
  const auto [n, max_leaf] = GetParam();
  SpaceOptions options;
  options.max_leaf = max_leaf;
  const double lo = min_instruction_count(n, options).value;
  const double hi = max_instruction_count(n, options).value;
  util::Rng rng(static_cast<std::uint64_t>(n * 31 + max_leaf));
  search::RecursiveSplitSampler sampler(max_leaf);
  for (int trial = 0; trial < 200; ++trial) {
    const double v =
        instruction_count(sampler.sample(n, rng), options.weights);
    ASSERT_GE(v, lo - 1e-9);
    ASSERT_LE(v, hi + 1e-9);
  }
}

TEST_P(SpaceSweep, MomentsLieBetweenTheExtremes) {
  const auto [n, max_leaf] = GetParam();
  SpaceOptions options;
  options.max_leaf = max_leaf;
  const double lo = min_instruction_count(n, options).value;
  const double hi = max_instruction_count(n, options).value;
  const auto moments = instruction_moments(n, options);
  EXPECT_GE(moments.mean, lo);
  EXPECT_LE(moments.mean, hi);
  EXPECT_GE(moments.variance, 0.0);
  // Standard deviation cannot exceed half the range (Popoviciu).
  EXPECT_LE(std::sqrt(moments.variance), (hi - lo) / 2.0 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndLeafLimits, SpaceSweep,
    ::testing::Combine(::testing::Values(4, 8, 12, 16),
                       ::testing::Values(1, 4, 8)),
    [](const auto& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "_L" +
             std::to_string(std::get<1>(info.param));
    });

TEST(ModelProperty, InstructionCountStrictlyIncreasesWithSize) {
  for (const auto make : {&core::Plan::iterative, &core::Plan::right_recursive,
                          &core::Plan::left_recursive}) {
    double previous = 0.0;
    for (int n = 1; n <= 20; ++n) {
      const double v = instruction_count(make(n));
      EXPECT_GT(v, previous);
      previous = v;
    }
  }
}

TEST(ModelProperty, InstructionCountAtLeastLeafWork) {
  // Any plan must cost at least its flops + loads + stores under unit
  // weights for those ops.
  util::Rng rng(3);
  search::RecursiveSplitSampler sampler(core::kMaxUnrolled);
  for (int n : {6, 12, 18}) {
    for (int trial = 0; trial < 20; ++trial) {
      const auto plan = sampler.sample(n, rng);
      const double size = static_cast<double>(plan.size());
      const double floor = size * n  // flops
                           + 2.0 * size;  // one load+store per element min
      EXPECT_GE(instruction_count(plan), floor) << plan.to_string();
    }
  }
}

class CacheSweep : public ::testing::TestWithParam<int> {};

TEST_P(CacheSweep, MissesMonotoneInCacheAndLineSize) {
  const int n = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(n));
  search::RecursiveSplitSampler sampler(core::kMaxUnrolled);
  const auto plan = sampler.sample(n, rng);
  // Misses non-increasing in direct-mapped cache capacity.
  std::uint64_t previous = ~std::uint64_t{0};
  for (std::uint64_t elements = 256; elements <= 16384; elements *= 4) {
    const auto misses = direct_mapped_misses(plan, {elements, 8});
    EXPECT_LE(misses, previous) << elements;
    previous = misses;
  }
  // With everything resident (cache >= N), line size halves misses as it
  // doubles (pure compulsory traffic).
  const std::uint64_t big = std::uint64_t{1} << (n + 1);
  EXPECT_EQ(direct_mapped_misses(plan, {big, 4}),
            2 * direct_mapped_misses(plan, {big, 8}));
}

INSTANTIATE_TEST_SUITE_P(Sizes, CacheSweep, ::testing::Values(8, 11, 14));

TEST(ModelProperty, CombinedModelReducesToComponents) {
  CombinedModel combined;
  combined.alpha = 1.0;
  combined.beta = 0.0;
  const auto plan = core::Plan::iterative(10);
  EXPECT_DOUBLE_EQ(combined(plan), instruction_count(plan));
  combined.alpha = 0.0;
  combined.beta = 1.0;
  EXPECT_DOUBLE_EQ(combined(plan),
                   static_cast<double>(direct_mapped_misses(plan, combined.cache)));
}

}  // namespace
}  // namespace whtlab::model
