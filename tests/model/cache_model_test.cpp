// The cache model's defining invariant: exact agreement with the trace-driven
// simulator configured as the same direct-mapped cache.
#include "model/cache_model.hpp"

#include <gtest/gtest.h>

#include "cachesim/trace_runner.hpp"
#include "core/plan.hpp"
#include "search/enumerate.hpp"
#include "search/sampler.hpp"
#include "util/rng.hpp"

namespace whtlab::model {
namespace {

using cachesim::CacheConfig;
using core::Plan;

cachesim::CacheConfig as_sim_config(const CacheModelConfig& m) {
  return CacheConfig::direct_mapped(m.cache_elements / m.line_elements,
                                    m.line_elements * sizeof(double));
}

TEST(CacheModel, ConfigValidation) {
  EXPECT_NO_THROW(CacheModelConfig::opteron_l1().validate());
  EXPECT_THROW((CacheModelConfig{100, 8}).validate(), std::invalid_argument);
  EXPECT_THROW((CacheModelConfig{128, 3}).validate(), std::invalid_argument);
  EXPECT_THROW((CacheModelConfig{4, 8}).validate(), std::invalid_argument);
}

TEST(CacheModel, FitsInCacheIsCompulsoryOnly) {
  const CacheModelConfig config{8192, 8};
  for (int n : {3, 6, 9, 13}) {  // up to 8192 elements
    util::Rng rng(n);
    search::RecursiveSplitSampler sampler(core::kMaxUnrolled);
    const Plan plan = sampler.sample(n, rng);
    EXPECT_EQ(direct_mapped_misses(plan, config),
              (std::uint64_t{1} << n) / 8)
        << plan.to_string();
  }
}

TEST(CacheModel, LineSmallerThanTransform) {
  const CacheModelConfig config{64, 1};  // 64 single-element lines
  // Transform of 32 elements fits: 32 compulsory misses.
  EXPECT_EQ(direct_mapped_misses(Plan::iterative(5), config), 32u);
}

class ModelVsSimulator : public ::testing::TestWithParam<int> {};

TEST_P(ModelVsSimulator, ExactAgreementOnEnumeratedPlans) {
  // Tiny direct-mapped cache (32 elements, 4-element lines) against 2^n = 64
  // element transforms: heavy conflict behaviour, every plan shape.
  const int n = GetParam();
  const CacheModelConfig model_config{32, 4};
  const auto sim_config = as_sim_config(model_config);
  for (const auto& plan : search::enumerate_plans(n, 4)) {
    EXPECT_EQ(direct_mapped_misses(plan, model_config),
              cachesim::simulate_plan(plan, sim_config).l1_misses)
        << plan.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(SizesFourToSeven, ModelVsSimulator,
                         ::testing::Range(4, 8));

TEST(CacheModel, ExactAgreementOnRandomLargePlans) {
  const CacheModelConfig model_config = CacheModelConfig::opteron_l1();
  const auto sim_config = as_sim_config(model_config);
  util::Rng rng(31);
  search::RecursiveSplitSampler sampler(core::kMaxUnrolled);
  for (int n : {14, 16}) {
    for (int trial = 0; trial < 4; ++trial) {
      const Plan plan = sampler.sample(n, rng);
      EXPECT_EQ(direct_mapped_misses(plan, model_config),
                cachesim::simulate_plan(plan, sim_config).l1_misses)
          << plan.to_string();
    }
  }
}

TEST(CacheModel, BoundsHold) {
  const CacheModelConfig config = CacheModelConfig::opteron_l1();
  util::Rng rng(37);
  search::RecursiveSplitSampler sampler(core::kMaxUnrolled);
  for (int n : {10, 14, 16}) {
    const Plan plan = sampler.sample(n, rng);
    const std::uint64_t misses = direct_mapped_misses(plan, config);
    EXPECT_GE(misses, compulsory_misses(plan, config));
    EXPECT_LE(misses, access_count(plan));
  }
}

TEST(CacheModel, CompulsoryMissesRoundUp) {
  const CacheModelConfig config{8192, 8};
  EXPECT_EQ(compulsory_misses(Plan::small(2), config), 1u);  // 4 elems, 1 line
  EXPECT_EQ(compulsory_misses(Plan::small(3), config), 1u);  // 8 elems
  EXPECT_EQ(compulsory_misses(Plan::iterative(4), config), 2u);  // 16 elems
}

TEST(CacheModel, RecursiveBeatsIterativeOutOfCache) {
  // The mechanism behind Figure 3's crossover, on the analytic model.
  const CacheModelConfig config = CacheModelConfig::opteron_l1();
  const int n = 16;  // 64K elements >> 8K cache elements
  EXPECT_LT(direct_mapped_misses(Plan::right_recursive(n), config),
            direct_mapped_misses(Plan::iterative(n), config));
}

TEST(CacheModel, SmallerCacheNeverMissesLess) {
  util::Rng rng(41);
  search::RecursiveSplitSampler sampler(core::kMaxUnrolled);
  const Plan plan = sampler.sample(14, rng);
  const std::uint64_t big = direct_mapped_misses(plan, {8192, 8});
  const std::uint64_t small = direct_mapped_misses(plan, {1024, 8});
  EXPECT_GE(small, big);
}

}  // namespace
}  // namespace whtlab::model
