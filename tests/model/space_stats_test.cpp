// Space statistics vs brute force: the DP extremes and the moment
// recurrences must agree with direct enumeration of the plan space, and the
// sampled population must match the exact moments.
#include "model/space_stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "model/instruction_model.hpp"
#include "search/enumerate.hpp"
#include "search/sampler.hpp"
#include "stats/descriptive.hpp"
#include "util/rng.hpp"

namespace whtlab::model {
namespace {

// Brute-force expectation over the recursive-split-uniform distribution:
// P(plan) = product over split nodes of 1/options(subtree size), where
// options(m) = [m <= max_leaf] + (2^(m-1) - 1).
double rsu_probability(const core::PlanNode& node, int max_leaf) {
  const int m = node.log2_size;
  const double options =
      (m <= max_leaf ? 1.0 : 0.0) +
      (m >= 2 ? static_cast<double>((std::uint64_t{1} << (m - 1)) - 1) : 0.0);
  double p = m == 1 ? 1.0 : 1.0 / options;
  for (const auto& child : node.children) {
    p *= rsu_probability(*child, max_leaf);
  }
  return p;
}

TEST(SpaceStats, MinMatchesEnumerationSmallSizes) {
  SpaceOptions options;
  options.max_leaf = 4;
  for (int n = 1; n <= 6; ++n) {
    double best = 1e300;
    double worst = -1e300;
    for (const auto& plan : search::enumerate_plans(n, options.max_leaf)) {
      const double v = instruction_count(plan, options.weights);
      best = std::min(best, v);
      worst = std::max(worst, v);
    }
    EXPECT_DOUBLE_EQ(min_instruction_count(n, options).value, best) << n;
    EXPECT_DOUBLE_EQ(max_instruction_count(n, options).value, worst) << n;
  }
}

TEST(SpaceStats, WitnessPlansAchieveTheirValues) {
  SpaceOptions options;
  for (int n : {4, 8, 12}) {
    const auto lo = min_instruction_count(n, options);
    const auto hi = max_instruction_count(n, options);
    EXPECT_DOUBLE_EQ(instruction_count(lo.plan, options.weights), lo.value);
    EXPECT_DOUBLE_EQ(instruction_count(hi.plan, options.weights), hi.value);
    EXPECT_EQ(lo.plan.log2_size(), n);
    EXPECT_EQ(hi.plan.log2_size(), n);
    EXPECT_LE(lo.value, hi.value);
  }
}

TEST(SpaceStats, MinIsMonotoneInMaxLeaf) {
  // Allowing bigger codelets can only help the minimum.
  for (int n : {6, 10}) {
    double prev = 1e300;
    for (int max_leaf = 1; max_leaf <= core::kMaxUnrolled; ++max_leaf) {
      SpaceOptions options;
      options.max_leaf = max_leaf;
      const double v = min_instruction_count(n, options).value;
      EXPECT_LE(v, prev) << "n=" << n << " L=" << max_leaf;
      prev = v;
    }
  }
}

TEST(SpaceStats, MomentsMatchBruteForceSmallSizes) {
  SpaceOptions options;
  options.max_leaf = 3;
  for (int n = 1; n <= 6; ++n) {
    double mean = 0.0;
    double m2 = 0.0;
    double m3 = 0.0;
    double total_p = 0.0;
    for (const auto& plan : search::enumerate_plans(n, options.max_leaf)) {
      const double p = rsu_probability(plan.root(), options.max_leaf);
      const double v = instruction_count(plan, options.weights);
      total_p += p;
      mean += p * v;
      m2 += p * v * v;
      m3 += p * v * v * v;
    }
    ASSERT_NEAR(total_p, 1.0, 1e-12) << n;  // distribution sanity
    const auto result = instruction_moments(n, options);
    EXPECT_NEAR(result.mean, mean, 1e-9 * std::abs(mean)) << n;
    const double variance = m2 - mean * mean;
    EXPECT_NEAR(result.variance, variance,
                1e-9 * std::max(1.0, std::abs(variance)))
        << n;
    if (variance > 0) {
      const double k3 = m3 - 3 * mean * m2 + 2 * mean * mean * mean;
      EXPECT_NEAR(result.skewness, k3 / std::pow(variance, 1.5), 1e-6) << n;
    }
  }
}

TEST(SpaceStats, SampledPopulationMatchesExactMoments) {
  SpaceOptions options;
  const int n = 9;
  const auto exact = instruction_moments(n, options);
  util::Rng rng(777);
  search::RecursiveSplitSampler sampler(options.max_leaf);
  std::vector<double> values;
  const int samples = 20000;
  values.reserve(samples);
  for (int i = 0; i < samples; ++i) {
    values.push_back(instruction_count(sampler.sample(n, rng), options.weights));
  }
  const double sample_mean = stats::mean(values);
  const double sample_sd = stats::stddev(values);
  // Mean within 5 standard errors.
  const double se = std::sqrt(exact.variance / samples);
  EXPECT_NEAR(sample_mean, exact.mean, 5 * se);
  EXPECT_NEAR(sample_sd, std::sqrt(exact.variance), 0.05 * sample_sd);
}

TEST(SpaceStats, DistributionSumsToOneAndMatchesMoments) {
  SpaceOptions options;
  options.max_leaf = 3;
  const int n = 6;
  const auto pmf = instruction_distribution(n, options);
  double total = 0.0;
  double mean = 0.0;
  for (const auto& [value, prob] : pmf) {
    total += prob;
    mean += prob * static_cast<double>(value);
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
  const auto exact = instruction_moments(n, options);
  EXPECT_NEAR(mean, exact.mean, 1e-6 * std::abs(exact.mean));
}

TEST(SpaceStats, DistributionSupportWithinExtremes) {
  SpaceOptions options;
  options.max_leaf = 4;
  const int n = 7;
  const auto pmf = instruction_distribution(n, options);
  const double lo = min_instruction_count(n, options).value;
  const double hi = max_instruction_count(n, options).value;
  ASSERT_FALSE(pmf.empty());
  EXPECT_GE(static_cast<double>(pmf.begin()->first), lo - 0.5);
  EXPECT_LE(static_cast<double>(pmf.rbegin()->first), hi + 0.5);
}

TEST(SpaceStats, SkewnessShrinksWithSize) {
  // The TCS'06 limit theorem: the instruction-count distribution approaches
  // a normal law; computationally, |skewness| at n=18 is well below n=5's.
  SpaceOptions options;
  const double early = std::abs(instruction_moments(5, options).skewness);
  const double late = std::abs(instruction_moments(18, options).skewness);
  EXPECT_LT(late, early);
}

TEST(SpaceStats, CoarseningKeepsMass) {
  SpaceOptions options;
  const auto pmf = instruction_distribution(8, options, /*max_support=*/64);
  EXPECT_LE(pmf.size(), 64u);
  double total = 0.0;
  for (const auto& [value, prob] : pmf) total += prob;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(SpaceStats, ArgumentValidation) {
  EXPECT_THROW(min_instruction_count(0), std::invalid_argument);
  SpaceOptions bad;
  bad.max_leaf = 0;
  EXPECT_THROW(instruction_moments(4, bad), std::invalid_argument);
  EXPECT_THROW(instruction_distribution(4, {}, 1), std::invalid_argument);
}

}  // namespace
}  // namespace whtlab::model
