// The analytic cache model's defining invariant: bit-for-bit agreement with
// the trace-replay oracle (the tag-per-set walk it replaced) — exact, no
// tolerance — across every enumerated plan at small sizes, sampled and
// canonical plans through n = 14, and multiple cache geometries including
// degenerate ones (single-element lines, line == cache).  On top of the
// number itself, planning must be unchanged: DP over the analytic model
// must pick the same plan as DP over the oracle.
#include "model/analytic_misses.hpp"

#include <gtest/gtest.h>

#include "core/plan.hpp"
#include "model/cache_model.hpp"
#include "model/combined_model.hpp"
#include "model/cost_cache.hpp"
#include "model/instruction_model.hpp"
#include "search/dp_search.hpp"
#include "search/enumerate.hpp"
#include "search/sampler.hpp"
#include "util/rng.hpp"

namespace whtlab::model {
namespace {

using core::Plan;

/// The >= 4 geometries the agreement suite sweeps: the paper machine's L1,
/// two conflict-heavy small caches, a single-element-line geometry, and the
/// degenerate line == cache.
const CacheModelConfig kGeometries[] = {
    {8192, 8}, {1024, 8}, {32, 4}, {64, 1}, {128, 128},
};

std::vector<Plan> canonical_plans(int n) {
  std::vector<Plan> plans{Plan::iterative(n), Plan::right_recursive(n),
                          Plan::left_recursive(n), Plan::balanced_binary(n, 4)};
  if (n > 3) plans.push_back(Plan::iterative_radix(n, 3));
  return plans;
}

TEST(AnalyticMisses, MatchesOracleOnEveryEnumeratedPlan) {
  for (int n = 1; n <= 7; ++n) {
    const auto plans = search::enumerate_plans(n, 5);
    for (const auto& config : kGeometries) {
      for (const auto& plan : plans) {
        ASSERT_EQ(analytic_direct_mapped_misses(plan, config),
                  trace_direct_mapped_misses(plan, config))
            << plan.to_string() << " C=" << config.cache_elements
            << " L=" << config.line_elements;
      }
    }
  }
}

TEST(AnalyticMisses, MatchesOracleOnSampledPlansThroughFourteen) {
  util::Rng rng(2026);
  search::RecursiveSplitSampler sampler(core::kMaxUnrolled);
  for (int n = 8; n <= 14; ++n) {
    for (const auto& config : kGeometries) {
      for (const auto& plan : canonical_plans(n)) {
        ASSERT_EQ(analytic_direct_mapped_misses(plan, config),
                  trace_direct_mapped_misses(plan, config))
            << plan.to_string() << " C=" << config.cache_elements
            << " L=" << config.line_elements;
      }
      for (int trial = 0; trial < 25; ++trial) {
        const Plan plan = sampler.sample(n, rng);
        ASSERT_EQ(analytic_direct_mapped_misses(plan, config),
                  trace_direct_mapped_misses(plan, config))
            << plan.to_string() << " C=" << config.cache_elements
            << " L=" << config.line_elements;
      }
    }
  }
}

TEST(AnalyticMisses, DefaultRoutingUsesTheAnalyticEngine) {
  // direct_mapped_misses() == analytic (WHTLAB_MODEL_ORACLE unset in the
  // test environment), and both equal the oracle anyway.
  util::Rng rng(7);
  search::RecursiveSplitSampler sampler(core::kMaxUnrolled);
  const Plan plan = sampler.sample(13, rng);
  for (const auto& config : kGeometries) {
    EXPECT_EQ(direct_mapped_misses(plan, config),
              analytic_direct_mapped_misses(plan, config));
  }
}

TEST(AnalyticMisses, DpPicksTheSamePlanAsTheOracleModel) {
  // The acceptance bar that matters for planning: swapping the miss engine
  // under the combined model must not change any DP argmin.  (Costs are
  // equal because the counts are equal; asserting the chosen plan guards
  // against tie-breaking drift too.)
  for (const CacheModelConfig& config :
       {CacheModelConfig{1024, 8}, CacheModelConfig{8192, 8}}) {
    for (int n = 4; n <= 12; n += 2) {
      const core::InstructionWeights weights;
      const auto analytic_cost = [&](const Plan& plan) {
        return instruction_count(plan, weights) +
               0.05 * static_cast<double>(
                          analytic_direct_mapped_misses(plan, config));
      };
      const auto oracle_cost = [&](const Plan& plan) {
        return instruction_count(plan, weights) +
               0.05 * static_cast<double>(
                          trace_direct_mapped_misses(plan, config));
      };
      search::DpOptions options;
      options.max_parts = 4;
      const auto fast = search::dp_search(n, analytic_cost, options);
      const auto slow = search::dp_search(n, oracle_cost, options);
      EXPECT_EQ(fast.plan, slow.plan)
          << "n=" << n << " C=" << config.cache_elements;
      EXPECT_DOUBLE_EQ(fast.cost, slow.cost);
    }
  }
}

TEST(AnalyticMisses, MemoizedRecursionMatchesAndHits) {
  // Same counts with a CostCache attached, and repeated pricing of plans
  // sharing subtrees actually serves from the memo.
  const CacheModelConfig config{1024, 8};
  CostCache cache;
  util::Rng rng(99);
  search::RecursiveSplitSampler sampler(core::kMaxUnrolled);
  for (int trial = 0; trial < 10; ++trial) {
    const Plan plan = sampler.sample(12, rng);
    EXPECT_EQ(analytic_direct_mapped_misses(plan, config, &cache),
              analytic_direct_mapped_misses(plan, config));
    // Re-pricing the identical plan is answered entirely from the memo.
    const auto before = cache.stats().subtree_misses;
    EXPECT_EQ(analytic_direct_mapped_misses(plan, config, &cache),
              analytic_direct_mapped_misses(plan, config));
    EXPECT_EQ(cache.stats().subtree_misses, before);
  }
  EXPECT_GT(cache.stats().subtree_hits, 0u);
}

TEST(AnalyticMisses, CombinedModelThreadsTheCacheThrough) {
  CombinedModel plain;
  CombinedModel cached;
  CostCache cache;
  cached.cost_cache = &cache;
  const Plan plan = Plan::balanced_binary(14, 4);
  EXPECT_DOUBLE_EQ(plain(plan), cached(plan));
  EXPECT_GT(cache.size(), 0u);
}

}  // namespace
}  // namespace whtlab::model
