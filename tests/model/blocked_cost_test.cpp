// Blocked cost model: the memory-pass term prices sweeps, the butterfly
// term prices vector width, and plan shape is (deliberately) priced out.
#include "model/blocked_cost.hpp"

#include <gtest/gtest.h>

#include "core/plan.hpp"
#include "core/schedule.hpp"

namespace whtlab::model {
namespace {

BlockedCostConfig test_config() {
  BlockedCostConfig config;
  config.blocking.l1_block_log2 = 11;
  config.blocking.l2_block_log2 = 17;
  return config;
}

TEST(BlockedCost, ButterflyTermScalesWithWidth) {
  BlockedCostConfig narrow = test_config();
  BlockedCostConfig wide = test_config();
  wide.vector_width = 8;
  // Below the L1 block everything is in cache; sweep weights are equal, so
  // the full width-8 saving shows up in the difference.
  const core::Plan plan = core::Plan::iterative(10);
  const double n = 1 << 10;
  EXPECT_DOUBLE_EQ(blocked_cost(plan, narrow) - blocked_cost(plan, wide),
                   n * 10 - n * 10 / 8.0);
}

TEST(BlockedCost, SweepTermMatchesScheduleSweeps) {
  const BlockedCostConfig config = test_config();
  // n = 20 with blocks 2^11 / 2^17: 2 sweeps (nested + one radix-8 pass),
  // beyond-L2 weight on both.
  const core::Schedule schedule = core::lower_size(20, config.blocking);
  ASSERT_EQ(core::sweep_count(schedule), 2);
  const double n = 1 << 20;
  EXPECT_DOUBLE_EQ(schedule_cost(schedule, config),
                   n * 20 + 2 * n * config.mem_sweep_weight);
}

TEST(BlockedCost, CrossingL2AddsTheDominantTerm) {
  const BlockedCostConfig config = test_config();
  // Per-point cost jumps when the working set leaves L2 and again with
  // every extra top-level sweep.
  const double in_l2 =
      blocked_cost(core::Plan::iterative(16), config) / (1 << 16);
  const double beyond =
      blocked_cost(core::Plan::iterative(20), config) / (1 << 20);
  EXPECT_GT(beyond, in_l2);
  // n = 24 takes a third sweep ([17, 24) needs two streaming passes);
  // the extra sweep outweighs the four extra butterfly stages.
  ASSERT_EQ(core::sweep_count(core::lower_size(24, config.blocking)), 3);
  const double three_sweeps =
      blocked_cost(core::Plan::iterative(24), config) / (1 << 24);
  EXPECT_GT(three_sweeps, beyond + (24 - 20) * config.butterfly_weight);
}

TEST(BlockedCost, PlanShapeDoesNotChangeThePrice) {
  const BlockedCostConfig config = test_config();
  for (int n : {8, 14, 20}) {
    EXPECT_DOUBLE_EQ(blocked_cost(core::Plan::iterative(n), config),
                     blocked_cost(core::Plan::balanced_binary(n, 4), config))
        << n;
  }
}

}  // namespace
}  // namespace whtlab::model
