// Blocked cost model: the memory-pass term prices sweeps, the butterfly
// term prices vector width, and plan shape is (deliberately) priced out.
#include "model/blocked_cost.hpp"

#include <gtest/gtest.h>

#include "core/plan.hpp"
#include "core/schedule.hpp"

namespace whtlab::model {
namespace {

BlockedCostConfig test_config() {
  BlockedCostConfig config;
  config.blocking.l1_block_log2 = 11;
  config.blocking.l2_block_log2 = 17;
  return config;
}

TEST(BlockedCost, ButterflyTermScalesWithWidth) {
  BlockedCostConfig narrow = test_config();
  BlockedCostConfig wide = test_config();
  wide.vector_width = 8;
  // Below the L1 block everything is in cache; sweep weights are equal, so
  // the full width-8 saving shows up in the difference.
  const core::Plan plan = core::Plan::iterative(10);
  const double n = 1 << 10;
  EXPECT_DOUBLE_EQ(blocked_cost(plan, narrow) - blocked_cost(plan, wide),
                   n * 10 - n * 10 / 8.0);
}

TEST(BlockedCost, SweepTermMatchesScheduleSweeps) {
  const BlockedCostConfig config = test_config();
  // n = 20 with blocks 2^11 / 2^17: 2 sweeps (nested + one radix-8 pass),
  // beyond-L2 weight on both.
  const core::Schedule schedule = core::lower_size(20, config.blocking);
  ASSERT_EQ(core::sweep_count(schedule), 2);
  const double n = 1 << 20;
  EXPECT_DOUBLE_EQ(schedule_cost(schedule, config),
                   n * 20 + 2 * n * config.mem_sweep_weight);
}

TEST(BlockedCost, CrossingL2AddsTheDominantTerm) {
  const BlockedCostConfig config = test_config();
  // Per-point cost jumps when the working set leaves L2 and again with
  // every extra top-level sweep.
  const double in_l2 =
      blocked_cost(core::Plan::iterative(16), config) / (1 << 16);
  const double beyond =
      blocked_cost(core::Plan::iterative(20), config) / (1 << 20);
  EXPECT_GT(beyond, in_l2);
  // n = 24 takes a third sweep ([17, 24) needs two streaming passes);
  // the extra sweep outweighs the four extra butterfly stages.
  ASSERT_EQ(core::sweep_count(core::lower_size(24, config.blocking)), 3);
  const double three_sweeps =
      blocked_cost(core::Plan::iterative(24), config) / (1 << 24);
  EXPECT_GT(three_sweeps, beyond + (24 - 20) * config.butterfly_weight);
}

TEST(BlockedCost, PlanShapeDoesNotChangeThePrice) {
  const BlockedCostConfig config = test_config();
  for (int n : {8, 14, 20}) {
    EXPECT_DOUBLE_EQ(blocked_cost(core::Plan::iterative(n), config),
                     blocked_cost(core::Plan::balanced_binary(n, 4), config))
        << n;
  }
}

TEST(BlockedCost, FeaturesAreTheCostGradient) {
  // schedule_cost must equal the dot product of schedule_features with the
  // config weights — the contract the calibration fit relies on.
  const BlockedCostConfig config = test_config();
  for (int n : {8, 14, 18, 20, 24}) {
    const BlockedFeatures f = blocked_features(n, config);
    EXPECT_DOUBLE_EQ(blocked_cost(core::Plan::iterative(n), config),
                     config.butterfly_weight * f.butterflies +
                         config.l1_sweep_weight * f.l1_doubles +
                         config.l2_sweep_weight * f.l2_doubles +
                         config.mem_sweep_weight * f.mem_doubles)
        << n;
  }
}

TEST(BlockedCalibration, SerializeParsesBack) {
  BlockedCalibration calibration;
  calibration.butterfly_weight = 1.5;
  calibration.l1_sweep_weight = 0.125;
  calibration.l2_sweep_weight = 2.25;
  calibration.mem_sweep_weight = 17.0;
  const auto parsed = BlockedCalibration::parse(calibration.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_DOUBLE_EQ(parsed->butterfly_weight, 1.5);
  EXPECT_DOUBLE_EQ(parsed->l1_sweep_weight, 0.125);
  EXPECT_DOUBLE_EQ(parsed->l2_sweep_weight, 2.25);
  EXPECT_DOUBLE_EQ(parsed->mem_sweep_weight, 17.0);
  EXPECT_FALSE(BlockedCalibration::parse("not numbers").has_value());
  EXPECT_FALSE(BlockedCalibration::parse("1 2 3").has_value());

  BlockedCostConfig config = test_config();
  calibration.apply(config);
  EXPECT_DOUBLE_EQ(config.mem_sweep_weight, 17.0);
}

TEST(BlockedCalibration, RecoversSyntheticWeights) {
  // A noise-free "measurement" that is exactly linear in the model's
  // features must be fit exactly (up to the ridge term): the calibration
  // then reproduces the synthetic cost on every size.
  const BlockedCostConfig base = test_config();
  BlockedCostConfig truth = base;
  truth.butterfly_weight = 0.5;
  truth.l1_sweep_weight = 0.75;
  truth.l2_sweep_weight = 3.0;
  truth.mem_sweep_weight = 24.0;
  const auto synthetic = [&truth](const core::Plan& plan) {
    return blocked_cost(plan, truth);
  };
  const std::vector<int> sizes{8, 10, 12, 14, 16, 18, 19, 20};
  const BlockedCalibration fit =
      calibrate_blocked_weights(sizes, synthetic, base);

  // Within the streaming regime the butterfly and sweep columns are nearly
  // collinear (both ~N up to slowly-varying factors), so individual weights
  // are only weakly identified; what the model needs — and what is asserted
  // — is that the fit reproduces the synthetic cost to a few percent, far
  // inside the gaps the model is asked to rank.
  BlockedCostConfig fitted = base;
  fit.apply(fitted);
  for (int n : {9, 13, 17, 21}) {
    const double want = blocked_cost(core::Plan::iterative(n), truth);
    const double got = blocked_cost(core::Plan::iterative(n), fitted);
    EXPECT_NEAR(got, want, 0.05 * want) << n;
  }
}

TEST(BlockedCalibration, UnobservedRegimeKeepsThePrior) {
  // All probe sizes below L1: the L2 and memory weights have no evidence
  // and must stay at the caller's prior, not collapse to the ridge zero.
  const BlockedCostConfig base = test_config();
  const auto synthetic = [&base](const core::Plan& plan) {
    return blocked_cost(plan, base);
  };
  const BlockedCalibration fit =
      calibrate_blocked_weights({6, 7, 8, 9, 10}, synthetic, base);
  EXPECT_DOUBLE_EQ(fit.l2_sweep_weight, base.l2_sweep_weight);
  EXPECT_DOUBLE_EQ(fit.mem_sweep_weight, base.mem_sweep_weight);
}

TEST(BlockedCalibration, RejectsBadArguments) {
  const BlockedCostConfig base = test_config();
  const auto measure = [](const core::Plan&) { return 1.0; };
  EXPECT_THROW(calibrate_blocked_weights({8, 9, 10}, measure, base),
               std::invalid_argument);
  EXPECT_THROW(calibrate_blocked_weights({8, 9, 10, 11}, nullptr, base),
               std::invalid_argument);
}

}  // namespace
}  // namespace whtlab::model
