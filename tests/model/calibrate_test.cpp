#include "model/calibrate.hpp"

#include <gtest/gtest.h>

#include "perf/measure.hpp"
#include "search/sampler.hpp"
#include "stats/correlation.hpp"
#include "util/rng.hpp"

namespace whtlab::model {
namespace {

TEST(Calibrate, RecoversSyntheticCosts) {
  // Synthesize cycles from known per-op costs; the fit must recover them.
  util::Rng rng(1);
  search::RecursiveSplitSampler sampler(core::kMaxUnrolled);
  std::vector<core::OpCounts> ops;
  std::vector<double> cycles;
  for (int i = 0; i < 60; ++i) {
    const auto plan = sampler.sample(10, rng);
    const auto c = core::count_ops(plan);
    ops.push_back(c);
    cycles.push_back(1.5 * static_cast<double>(c.loads + c.stores) +
                     0.75 * static_cast<double>(c.flops) +
                     2.0 * static_cast<double>(c.loop_outer + c.loop_mid +
                                               c.loop_inner) +
                     8.0 * static_cast<double>(c.calls));
  }
  const auto fit = calibrate_weights(ops, cycles);
  EXPECT_NEAR(fit.cost_memory, 1.5, 0.05);
  EXPECT_NEAR(fit.cost_flop, 0.75, 0.05);
  EXPECT_NEAR(fit.cost_loop, 2.0, 0.05);
  EXPECT_NEAR(fit.cost_call, 8.0, 0.3);
  // Prediction reproduces the synthetic data (the small ridge term used for
  // near-collinear features biases the fit by a few parts in 10^4).
  for (std::size_t i = 0; i < ops.size(); ++i) {
    EXPECT_NEAR(fit.predict(ops[i]), cycles[i], 1e-3 * cycles[i]);
  }
}

TEST(Calibrate, ToleratesNoise) {
  util::Rng rng(2);
  search::RecursiveSplitSampler sampler(core::kMaxUnrolled);
  std::vector<core::OpCounts> ops;
  std::vector<double> cycles;
  for (int i = 0; i < 200; ++i) {
    const auto plan = sampler.sample(9, rng);
    const auto c = core::count_ops(plan);
    ops.push_back(c);
    const double truth = 1.0 * static_cast<double>(c.loads + c.stores) +
                         1.0 * static_cast<double>(c.flops);
    cycles.push_back(truth * rng.uniform(0.95, 1.05));
  }
  const auto fit = calibrate_weights(ops, cycles);
  std::vector<double> predicted;
  for (const auto& c : ops) predicted.push_back(fit.predict(c));
  // 5% multiplicative noise on a population whose true spread is itself a
  // few tens of percent caps the achievable correlation around ~0.96.
  EXPECT_GT(stats::pearson(predicted, cycles), 0.93);
}

TEST(Calibrate, FittedModelNotWorseThanDefaultOnTrainingSet) {
  // On real measurements, the fitted model's correlation with cycles must
  // be at least the default model's (least squares optimizes R^2, and the
  // default model is in the fit's span).
  util::Rng rng(3);
  search::RecursiveSplitSampler sampler(core::kMaxUnrolled);
  perf::MeasureOptions measure;
  measure.repetitions = 5;
  std::vector<core::Plan> plans;
  std::vector<double> cycles;
  for (int i = 0; i < 60; ++i) {
    plans.push_back(sampler.sample(9, rng));
    cycles.push_back(perf::measure_plan(plans.back(), measure).cycles());
  }
  const auto fit = calibrate_weights(plans, cycles);
  std::vector<double> fitted;
  std::vector<double> default_model;
  const core::InstructionWeights defaults;
  for (const auto& plan : plans) {
    fitted.push_back(fit.predict(plan));
    default_model.push_back(defaults.instructions(core::count_ops(plan)));
  }
  EXPECT_GE(stats::pearson(fitted, cycles),
            stats::pearson(default_model, cycles) - 0.02);
}

TEST(Calibrate, Validation) {
  std::vector<core::OpCounts> ops(3);
  std::vector<double> cycles(3, 1.0);
  EXPECT_THROW(calibrate_weights(ops, cycles), std::invalid_argument);
  ops.resize(5);
  EXPECT_THROW(calibrate_weights(ops, cycles), std::invalid_argument);
}

TEST(Calibrate, MeasureCallbackOverloadMatchesPairedFit) {
  // The engine-callback overload (the hook backends use to calibrate their
  // own code path) must produce the same fit as measuring up front.
  util::Rng rng(4);
  search::RecursiveSplitSampler sampler(core::kMaxUnrolled);
  std::vector<core::Plan> plans;
  for (int i = 0; i < 12; ++i) plans.push_back(sampler.sample(8, rng));
  // A deterministic stand-in "measurement" keeps the equality exact.
  const auto fake_measure = [](const core::Plan& plan) {
    const auto c = core::count_ops(plan);
    return 2.0 * static_cast<double>(c.loads + c.stores) +
           1.0 * static_cast<double>(c.flops);
  };
  std::vector<double> cycles;
  for (const auto& plan : plans) cycles.push_back(fake_measure(plan));
  const auto via_callback = calibrate_weights(plans, fake_measure);
  const auto via_pairs = calibrate_weights(plans, cycles);
  EXPECT_DOUBLE_EQ(via_callback.cost_memory, via_pairs.cost_memory);
  EXPECT_DOUBLE_EQ(via_callback.cost_flop, via_pairs.cost_flop);
  EXPECT_DOUBLE_EQ(via_callback.cost_loop, via_pairs.cost_loop);
  EXPECT_DOUBLE_EQ(via_callback.cost_call, via_pairs.cost_call);
}

}  // namespace
}  // namespace whtlab::model
