// SIMD instruction-cost model: reduction to the scalar model at width 1,
// agreement with the executor's dispatch rules on hand-checkable plans, and
// the plan-space ordering consequences planning relies on.
#include "model/simd_cost.hpp"

#include <gtest/gtest.h>

#include "model/combined_model.hpp"
#include "model/instruction_model.hpp"

namespace whtlab::model {
namespace {

TEST(SimdCost, WidthOneIsTheScalarModel) {
  const core::InstructionWeights weights;
  for (const auto& plan :
       {core::Plan::iterative(10), core::Plan::right_recursive(10),
        core::Plan::balanced_binary(10, 4)}) {
    EXPECT_DOUBLE_EQ(simd_instruction_count(plan, weights, 1),
                     instruction_count(plan, weights));
  }
}

TEST(SimdCost, LoneLeafPricesTheInRegisterCodelet) {
  // A stride-1 leaf of >= W elements runs the in-register codelet: its
  // whole leaf cost is divided by W.  small[2] has only 4 elements, so at
  // width 8 it stays scalar.
  const core::InstructionWeights weights;
  EXPECT_DOUBLE_EQ(simd_instruction_count(core::Plan::small(4), weights, 4),
                   leaf_cost(4, weights) / 4.0);
  EXPECT_DOUBLE_EQ(simd_instruction_count(core::Plan::small(2), weights, 8),
                   leaf_cost(2, weights));
}

TEST(SimdCost, LockstepSubtreeIsFullyDiscounted) {
  // split[small[4],small[4]]: the executor runs the last child (S = 1) at
  // unit stride (in-register, /W) and the first child at S = 16 >= W in
  // lockstep (/W, overhead included? overhead of the split itself stays
  // scalar).  Verify against the closed form.
  const core::InstructionWeights weights;
  const core::Plan plan = core::Plan::split(
      {core::Plan::small(4), core::Plan::small(4)});
  const int width = 4;
  const double mult = child_multiplicity(8, 4);  // 16 calls each
  const double expected = split_overhead(8, {4, 4}, weights) +
                          mult * (leaf_cost(4, weights) / width) +  // lockstep
                          mult * (leaf_cost(4, weights) / width);   // unit
  EXPECT_DOUBLE_EQ(simd_instruction_count(plan, weights, width), expected);
}

TEST(SimdCost, WiderVectorsNeverCostMore) {
  const core::InstructionWeights weights;
  for (const auto& plan :
       {core::Plan::iterative(12), core::Plan::right_recursive(12),
        core::Plan::balanced_binary(12, 6), core::Plan::iterative_radix(12, 4)}) {
    const double scalar = simd_instruction_count(plan, weights, 1);
    const double avx2 = simd_instruction_count(plan, weights, 4);
    const double avx512 = simd_instruction_count(plan, weights, 8);
    EXPECT_LE(avx2, scalar) << plan.to_string();
    EXPECT_LE(avx512, avx2) << plan.to_string();
    // And SIMD actually helps on every one of these shapes.
    EXPECT_LT(avx2, scalar) << plan.to_string();
  }
}

TEST(SimdCost, CombinedModelRoutesThroughVectorWidth) {
  const core::Plan plan = core::Plan::balanced_binary(11, 5);
  CombinedModel scalar_model;
  CombinedModel simd_model;
  simd_model.vector_width = 4;
  const double miss_term =
      scalar_model.beta *
      static_cast<double>(direct_mapped_misses(plan, scalar_model.cache));
  EXPECT_DOUBLE_EQ(scalar_model(plan),
                   instruction_count(plan, scalar_model.weights) + miss_term);
  EXPECT_DOUBLE_EQ(
      simd_model(plan),
      simd_instruction_count(plan, simd_model.weights, 4) + miss_term);
  EXPECT_LT(simd_model(plan), scalar_model(plan));
}

}  // namespace
}  // namespace whtlab::model
