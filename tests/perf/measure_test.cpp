#include "perf/measure.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/executor.hpp"
#include "core/plan.hpp"
#include "perf/cycle_timer.hpp"
#include "perf/events.hpp"

namespace whtlab::perf {
namespace {

TEST(CycleTimer, Monotonic) {
  const std::uint64_t a = read_cycles();
  const std::uint64_t b = read_cycles();
  EXPECT_LE(a, b);
}

TEST(CycleTimer, RatePlausible) {
  // Any machine this runs on ticks between 100 MHz and 10 GHz.
  const double rate = cycles_per_second();
  EXPECT_GT(rate, 1e8);
  EXPECT_LT(rate, 1e10);
}

TEST(CycleTimer, ConversionConsistent) {
  EXPECT_NEAR(cycles_to_ns(static_cast<std::uint64_t>(cycles_per_second())),
              1e9, 1e6);
}

TEST(Measure, ReturnsOrderedSummary) {
  const auto result = measure_plan(core::Plan::iterative(8));
  EXPECT_GT(result.min_cycles, 0.0);
  EXPECT_LE(result.min_cycles, result.median_cycles);
  EXPECT_LE(result.min_cycles, result.mean_cycles);
  EXPECT_GE(result.inner_loop, 1);
  EXPECT_DOUBLE_EQ(result.cycles(), result.median_cycles);
}

TEST(Measure, LargerTransformsTakeLonger) {
  MeasureOptions options;
  options.repetitions = 5;
  const double small = measure_plan(core::Plan::iterative(6), options).cycles();
  const double large = measure_plan(core::Plan::iterative(14), options).cycles();
  EXPECT_GT(large, 4 * small);  // 256x the work; demand at least 4x the time
}

TEST(Measure, ExplicitInnerLoopIsHonored) {
  MeasureOptions options;
  options.inner_loop = 3;
  const auto result = measure_plan(core::Plan::small(4), options);
  EXPECT_EQ(result.inner_loop, 3);
}

TEST(Measure, AutoInnerLoopBatchesTinyTransforms) {
  EXPECT_GT(auto_inner_loop(core::Plan::small(2), core::CodeletBackend::kGenerated),
            8);
}

TEST(MeasureRun, TimesAnArbitraryEngine) {
  // The engine-agnostic protocol core: invocation count must be exactly
  // probe + warmup + repetitions * inner_loop, and the summary ordered.
  MeasureOptions options;
  options.warmup = 2;
  options.repetitions = 3;
  options.inner_loop = 0;  // auto: one probe run sizes the batch
  int invocations = 0;
  const auto result = measure_run(
      [&invocations](double* x) {
        ++invocations;
        x[0] += 1.0;  // touch the buffer so the engine is not optimized out
      },
      16, options);
  EXPECT_EQ(invocations, 1 + options.warmup + options.repetitions * result.inner_loop);
  EXPECT_GT(result.min_cycles, 0.0);
  EXPECT_LE(result.min_cycles, result.median_cycles);
  EXPECT_LE(result.min_cycles, result.mean_cycles);
}

TEST(MeasureRun, ExplicitInnerLoopSkipsProbe) {
  MeasureOptions options;
  options.warmup = 0;
  options.repetitions = 2;
  options.inner_loop = 5;
  int invocations = 0;
  const auto result =
      measure_run([&invocations](double*) { ++invocations; }, 8, options);
  EXPECT_EQ(result.inner_loop, 5);
  EXPECT_EQ(invocations, 10);
}

TEST(MeasureRun, RejectsBadProtocolOptions) {
  MeasureOptions options;
  options.repetitions = 0;
  EXPECT_THROW(measure_run([](double*) {}, 8, options), std::invalid_argument);
  options.repetitions = 1;
  options.warmup = -1;
  EXPECT_THROW(measure_run([](double*) {}, 8, options), std::invalid_argument);
}

TEST(MeasureRun, MeasurePlanIsAThinWrapper) {
  // measure_plan must agree with measure_run driving core::execute — same
  // protocol, same options, statistically indistinguishable cycles (assert
  // only that both produce sane summaries for the same work).
  const core::Plan plan = core::Plan::iterative(8);
  MeasureOptions options;
  options.repetitions = 3;
  options.inner_loop = 4;
  const auto direct = measure_plan(plan, options);
  const auto via_run = measure_run(
      [&plan](double* x) { core::execute(plan, x); }, plan.size(), options);
  EXPECT_EQ(direct.inner_loop, via_run.inner_loop);
  EXPECT_GT(direct.min_cycles, 0.0);
  EXPECT_GT(via_run.min_cycles, 0.0);
}

TEST(Measure, DeterministicCountsAreStableAcrossCalls) {
  EventConfig config;
  config.collect_cycles = false;  // only deterministic parts
  const auto a = collect_events(core::Plan::right_recursive(12), config);
  const auto b = collect_events(core::Plan::right_recursive(12), config);
  EXPECT_EQ(a.instructions, b.instructions);
  EXPECT_EQ(a.l1_misses, b.l1_misses);
  EXPECT_EQ(a.l2_misses, b.l2_misses);
  EXPECT_EQ(a.ops, b.ops);
}

TEST(Events, TripleIsConsistent) {
  EventConfig config;
  config.measure.repetitions = 3;
  const auto events = collect_events(core::Plan::iterative(10), config);
  EXPECT_GT(events.cycles, 0.0);
  EXPECT_GT(events.instructions, 0.0);
  // 2^10 doubles fit L1: compulsory misses only.
  EXPECT_EQ(events.l1_misses, (1u << 10) / 8);
  EXPECT_EQ(events.ops.flops, 10u << 10);
}

TEST(Events, MissCollectionCanBeDisabled) {
  EventConfig config;
  config.collect_cycles = false;
  config.collect_misses = false;
  const auto events = collect_events(core::Plan::iterative(8), config);
  EXPECT_EQ(events.l1_misses, 0u);
  EXPECT_EQ(events.cycles, 0.0);
  EXPECT_GT(events.instructions, 0.0);
}

}  // namespace
}  // namespace whtlab::perf
